//! Counter-wrap timestamp order vs an unbounded-counter oracle.
//!
//! The ΔLRU recency scheme (§3.1.1) keeps per-color counters that wrap at
//! Δ; a wrap at a block boundary becomes the color's timestamp one block
//! later, and rankings compare those committed wrap rounds. The oracle
//! below never wraps anything: it tracks the unbounded cumulative arrival
//! total per color and derives wraps arithmetically. These tests drive a
//! [`ColorBook`] and the oracle through the same rounds — unit cases across
//! the wrap boundary plus randomized schedules — and assert the book's
//! counters, timestamps and the full ΔLRU recency *order* agree with the
//! oracle everywhere.

use proptest::prelude::*;
use rrs_core::ranking::{lru_key, sort_by_lru, Recency};
use rrs_core::ColorBook;
use rrs_engine::{Observation, PendingStore};
use rrs_model::{ColorId, ColorTable};

/// Unbounded-counter shadow of one color's §3.1 bookkeeping.
#[derive(Clone, Debug, Default)]
struct OracleColor {
    /// Cumulative arrivals, never reset and never wrapped.
    total: u64,
    /// Arrivals consumed by wraps or discarded by retirement.
    consumed: u64,
    eligible: bool,
    last_wrap: Option<u64>,
    ts: Option<u64>,
}

/// The oracle: replays the drop/arrival-phase bookkeeping with unbounded
/// arithmetic instead of a wrapping counter.
struct Oracle {
    delta: u64,
    bounds: Vec<u64>,
    colors: Vec<OracleColor>,
}

impl Oracle {
    fn new(delta: u64, bounds: &[u64]) -> Self {
        Self { delta, bounds: bounds.to_vec(), colors: vec![OracleColor::default(); bounds.len()] }
    }

    /// The live counter value the book must agree with.
    fn counter(&self, c: usize) -> u64 {
        self.colors[c].total - self.colors[c].consumed
    }

    fn begin_round(&mut self, round: u64, arrivals: &[(ColorId, u64)], cached: &[bool]) {
        // Drop phase: commit timestamps, retire uncached eligible colors.
        for (i, s) in self.colors.iter_mut().enumerate() {
            if !round.is_multiple_of(self.bounds[i]) {
                continue;
            }
            if let Some(w) = s.last_wrap {
                if w < round {
                    s.ts = Some(w);
                }
            }
            if s.eligible && !cached[i] {
                s.eligible = false;
                // Retirement discards the partial count entirely.
                s.consumed = s.total;
            }
        }
        // Arrival phase: accumulate, then wrap at boundaries.
        for &(c, n) in arrivals {
            self.colors[c.index()].total += n;
        }
        for (i, s) in self.colors.iter_mut().enumerate() {
            if !round.is_multiple_of(self.bounds[i]) {
                continue;
            }
            let avail = s.total - s.consumed;
            if avail >= self.delta {
                s.consumed += (avail / self.delta) * self.delta;
                s.last_wrap = Some(round);
                s.eligible = true;
            }
        }
    }

    /// Colors sorted by the oracle's recency order: latest committed wrap
    /// first (never-wrapped = 0), ties by ascending color id.
    fn recency_order(&self) -> Vec<ColorId> {
        let mut ids: Vec<ColorId> = (0..self.colors.len() as u32).map(ColorId).collect();
        ids.sort_by_key(|c| (std::cmp::Reverse(self.colors[c.index()].ts.unwrap_or(0)), c.index()));
        ids
    }
}

/// Drive one round of both the book and the oracle and cross-check
/// counters, wrap rounds, committed timestamps and the recency order.
fn step_both(
    book: &mut ColorBook,
    oracle: &mut Oracle,
    table: &ColorTable,
    round: u64,
    arrivals: &[(ColorId, u64)],
    cached: &[bool],
) {
    let pending = PendingStore::new();
    let obs = Observation {
        round,
        mini_round: 0,
        speed: 1,
        delta: oracle.delta,
        colors: table,
        arrivals,
        dropped: &[],
        pending: &pending,
        slots: &[],
    };
    book.begin_round(&obs, |c| cached[c.index()]);
    oracle.begin_round(round, arrivals, cached);

    for i in 0..oracle.colors.len() {
        let c = ColorId(i as u32);
        let s = book.state(c);
        let o = &oracle.colors[i];
        assert_eq!(s.cnt, oracle.counter(i), "round {round}, color {c}: counter diverged");
        assert_eq!(s.last_wrap, o.last_wrap, "round {round}, color {c}: wrap round diverged");
        assert_eq!(s.ts, o.ts, "round {round}, color {c}: committed timestamp diverged");
        assert_eq!(s.eligible, o.eligible, "round {round}, color {c}: eligibility diverged");
        assert_eq!(
            Recency::from_ts(s.ts).value(),
            o.ts.unwrap_or(0),
            "round {round}, color {c}: recency value diverged"
        );
    }
    let mut ids: Vec<ColorId> = (0..oracle.colors.len() as u32).map(ColorId).collect();
    sort_by_lru(book, &mut ids);
    assert_eq!(ids, oracle.recency_order(), "round {round}: \u{0394}LRU order diverged");
}

#[test]
fn order_flips_exactly_when_a_later_wrap_commits() {
    let table = ColorTable::from_bounds(&[4, 4]);
    let (a, b) = (ColorId(0), ColorId(1));
    let delta = 3;
    let mut book = ColorBook::new(delta);
    let mut oracle = Oracle::new(delta, &[4, 4]);
    let cached = [true, true];

    // Round 0: color a wraps (3 >= Δ); b stays below the wrap bound.
    step_both(&mut book, &mut oracle, &table, 0, &[(a, 3), (b, 2)], &cached);
    // Nothing committed yet: both at recency 0, order is (a, b) by id.
    assert!(lru_key(&book, a) < lru_key(&book, b));

    // Round 4: a's wrap commits (ts=0... which equals "never" numerically);
    // b now wraps (2+1 = 3 >= Δ).
    step_both(&mut book, &mut oracle, &table, 4, &[(b, 1)], &cached);
    assert_eq!(book.state(a).ts, Some(0));
    assert_eq!(book.state(b).ts, None);
    // Paper convention: a committed wrap at round 0 has the same numeric
    // recency as never-wrapped, so the id tiebreak still puts a first.
    assert!(lru_key(&book, a) < lru_key(&book, b));

    // Round 8: b's round-4 wrap commits and b becomes the more recent one.
    step_both(&mut book, &mut oracle, &table, 8, &[], &cached);
    assert_eq!(book.state(b).ts, Some(4));
    assert!(lru_key(&book, b) < lru_key(&book, a), "later wrap must outrank earlier");

    // Round 8 arrivals wrapped a again (checked inside step_both); by
    // round 12 a's newer wrap commits and the order flips back.
    step_both(&mut book, &mut oracle, &table, 12, &[(a, 3)], &cached);
}

#[test]
fn retirement_discards_partial_counts_in_both_models() {
    let table = ColorTable::from_bounds(&[2]);
    let a = ColorId(0);
    let delta = 4;
    let mut book = ColorBook::new(delta);
    let mut oracle = Oracle::new(delta, &[2]);

    // Wrap at round 0 (4 >= Δ) with 2 left over; cached through round 2.
    step_both(&mut book, &mut oracle, &table, 0, &[(a, 6)], &[true]);
    assert_eq!(book.state(a).cnt, 2);
    // Round 2, not cached: retires, partial count discarded.
    step_both(&mut book, &mut oracle, &table, 2, &[], &[false]);
    assert_eq!(book.state(a).cnt, 0);
    assert!(!book.state(a).eligible);
    // The color must now re-accumulate a full Δ from zero to wrap again.
    step_both(&mut book, &mut oracle, &table, 4, &[(a, 3)], &[true]);
    assert!(!book.state(a).eligible);
    step_both(&mut book, &mut oracle, &table, 6, &[(a, 1)], &[true]);
    assert!(book.state(a).eligible);
}

#[test]
fn multi_delta_batch_consumes_every_full_multiple() {
    let table = ColorTable::from_bounds(&[1]);
    let a = ColorId(0);
    let delta = 3;
    let mut book = ColorBook::new(delta);
    let mut oracle = Oracle::new(delta, &[1]);
    // 11 jobs at once: one wrap event consumes 9 = 3·Δ, leaving 2.
    step_both(&mut book, &mut oracle, &table, 0, &[(a, 11)], &[true]);
    assert_eq!(book.state(a).cnt, 2);
    assert_eq!(book.state(a).last_wrap, Some(0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random batched schedules over three colors with mixed bounds: the
    /// wrapping-counter book and the unbounded oracle must agree on every
    /// counter, timestamp and the full recency order, every round.
    #[test]
    fn random_schedules_agree_with_unbounded_oracle(
        delta in 1u64..5,
        arrivals in prop::collection::vec(0u64..5, 3 * 33),
        cache_bits in prop::collection::vec(0u8..2, 3 * 33),
    ) {
        let bounds = [1u64, 2, 4];
        let table = ColorTable::from_bounds(&bounds);
        let mut book = ColorBook::new(delta);
        let mut oracle = Oracle::new(delta, &bounds);
        for round in 0..33u64 {
            let mut batch: Vec<(ColorId, u64)> = Vec::new();
            for (i, &d) in bounds.iter().enumerate() {
                // Arrivals only at the color's block boundaries.
                let n = arrivals[round as usize * 3 + i];
                if round % d == 0 && n > 0 {
                    batch.push((ColorId(i as u32), n));
                }
            }
            let cached: Vec<bool> =
                (0..3).map(|i| cache_bits[round as usize * 3 + i] == 1).collect();
            step_both(&mut book, &mut oracle, &table, round, &batch, &cached);
        }
    }
}

//! A hand-rolled Rust lexer: just enough token structure for the rules in
//! this crate, and nothing more.
//!
//! The lexer's one job is to make the rule code immune to the classic
//! text-grep failure modes: banned tokens inside comments, strings, doc
//! examples, or raw literals must be invisible, while the same tokens in
//! live code must be visible with a line number attached. It recognizes
//! line and (nested) block comments, string / raw-string / byte-string /
//! char literals, lifetimes, numeric literals, identifiers, and
//! single-character punctuation. Multi-character operators arrive as their
//! component punctuation tokens (`=>` is `=` then `>`), which is all the
//! rule layer needs.
//!
//! No `syn`, no proc-macro machinery: the workspace's no-registry
//! constraint applies to its referee too, and the subset of Rust this
//! workspace uses lexes cleanly under these rules (the `lint_wall` test
//! run over the whole repo is the standing proof).

/// What a token is, with just enough payload for the rules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`fn`, `impl`, `f64`, `unwrap`, ...).
    Ident(String),
    /// A string or byte-string literal, with quotes/escapes decoded to the
    /// literal's value (raw strings decode to their body verbatim).
    Str(String),
    /// A char literal (payload not decoded; rules never need it).
    Char,
    /// A lifetime such as `'a` or `'_`.
    Lifetime,
    /// A numeric literal, verbatim (`0.5`, `1e9`, `0x1F`, `42u64`).
    Num(String),
    /// A single punctuation character.
    Punct(char),
}

/// One lexed token and the 1-based line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

impl Token {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The decoded string-literal value, if this is a string literal.
    pub fn str_value(&self) -> Option<&str> {
        match &self.tok {
            Tok::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    /// Whether this token is the given identifier/keyword.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Ident(t) if t == s)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex a source file. Unterminated constructs (string, block comment) are
/// reported as errors naming the line where they start, so a truncated or
/// non-Rust input fails loudly instead of silently dropping its tail.
pub fn lex(src: &str) -> Result<Vec<Token>, String> {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.push(Token { tok, line });
    }

    fn run(mut self) -> Result<Vec<Token>, String> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(line)?,
                '"' => self.string(line)?,
                'r' | 'b' if self.raw_or_byte_prefix() => self.prefixed_literal(line)?,
                '\'' => self.quote(line)?,
                c if is_ident_start(c) => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        Ok(self.out)
    }

    fn line_comment(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    fn block_comment(&mut self, start: u32) -> Result<(), String> {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => return Err(format!("unterminated block comment at line {start}")),
            }
        }
        Ok(())
    }

    /// Is the `r`/`b` at the cursor the prefix of a raw/byte literal (as
    /// opposed to the start of an identifier)?
    fn raw_or_byte_prefix(&self) -> bool {
        match (self.peek(0), self.peek(1), self.peek(2)) {
            (Some('r'), Some('"' | '#'), _) => {
                // `r"..."` or `r#"..."#`; `r#ident` (raw identifier) also
                // lands here and is handled by `prefixed_literal`.
                true
            }
            (Some('b'), Some('"' | '\''), _) => true,
            (Some('b'), Some('r'), Some('"' | '#')) => true,
            _ => false,
        }
    }

    fn prefixed_literal(&mut self, line: u32) -> Result<(), String> {
        let first = self.bump().expect("prefixed_literal called at end of input");
        match (first, self.peek(0)) {
            ('r', Some('"')) => self.raw_string(line, 0),
            ('r', Some('#')) => {
                let mut hashes = 0usize;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    self.raw_string(line, hashes)
                } else {
                    // A raw identifier such as `r#type`.
                    self.bump();
                    self.ident(line);
                    Ok(())
                }
            }
            ('b', Some('"')) => self.string(line),
            ('b', Some('\'')) => self.quote(line),
            ('b', Some('r')) => {
                self.bump();
                let mut hashes = 0usize;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                for _ in 0..hashes {
                    self.bump();
                }
                self.raw_string(line, hashes)
            }
            _ => unreachable!("raw_or_byte_prefix guarded this call"),
        }
    }

    /// A regular (escaped) string literal; cursor on the opening quote.
    fn string(&mut self, start: u32) -> Result<(), String> {
        self.bump();
        let mut value = String::new();
        loop {
            match self.bump() {
                Some('"') => break,
                Some('\\') => {
                    let esc = self
                        .bump()
                        .ok_or_else(|| format!("unterminated string escape at line {start}"))?;
                    match esc {
                        'n' => value.push('\n'),
                        't' => value.push('\t'),
                        'r' => value.push('\r'),
                        '0' => value.push('\0'),
                        '\\' => value.push('\\'),
                        '"' => value.push('"'),
                        '\'' => value.push('\''),
                        // `\u{...}`, `\x..`, and line-continuation escapes:
                        // the rules only ever look for ASCII substrings, so
                        // a placeholder keeps the value usable without a
                        // full Unicode decoder.
                        'u' | 'x' => value.push('\u{FFFD}'),
                        '\n' => {}
                        other => value.push(other),
                    }
                }
                Some(c) => value.push(c),
                None => return Err(format!("unterminated string literal at line {start}")),
            }
        }
        self.push(Tok::Str(value), start);
        Ok(())
    }

    /// A raw string body; cursor on the opening quote, `hashes` already
    /// consumed.
    fn raw_string(&mut self, start: u32, hashes: usize) -> Result<(), String> {
        self.bump();
        let mut value = String::new();
        loop {
            match self.bump() {
                Some('"') => {
                    let mut n = 0usize;
                    while n < hashes && self.peek(n) == Some('#') {
                        n += 1;
                    }
                    if n == hashes {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                    value.push('"');
                }
                Some(c) => value.push(c),
                None => return Err(format!("unterminated raw string at line {start}")),
            }
        }
        self.push(Tok::Str(value), start);
        Ok(())
    }

    /// A `'` token: lifetime or char literal. A lifetime is `'` followed by
    /// an identifier with no closing quote; everything else is a char.
    fn quote(&mut self, start: u32) -> Result<(), String> {
        self.bump();
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume through the closing quote.
                self.bump();
                self.bump(); // the escaped character (enough for \n, \', \\)
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(Tok::Char, start);
                Ok(())
            }
            Some(c) if is_ident_start(c) => {
                let mut len = 1usize;
                while self.peek(len).is_some_and(is_ident_continue) {
                    len += 1;
                }
                if self.peek(len) == Some('\'') {
                    for _ in 0..=len {
                        self.bump();
                    }
                    self.push(Tok::Char, start);
                } else {
                    for _ in 0..len {
                        self.bump();
                    }
                    self.push(Tok::Lifetime, start);
                }
                Ok(())
            }
            Some(_) => {
                // `'('`, `' '`, etc.
                self.bump();
                match self.bump() {
                    Some('\'') => {
                        self.push(Tok::Char, start);
                        Ok(())
                    }
                    _ => Err(format!("unterminated char literal at line {start}")),
                }
            }
            None => Err(format!("dangling quote at line {start}")),
        }
    }

    fn ident(&mut self, line: u32) {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(Tok::Ident(s), line);
    }

    /// A numeric literal: digits, `_`, letters (hex digits, `e` exponents,
    /// type suffixes), plus a `.` when followed by a digit — so `0.5` is one
    /// token while `1..4` and `x.0` are not.
    fn number(&mut self, line: u32) {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            let dot = c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit());
            if is_ident_continue(c) || dot {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(Tok::Num(s), line);
    }
}

/// Whether a numeric-literal token spells a floating-point number: it
/// contains a decimal point, carries an `f32`/`f64` suffix, or has a decimal
/// exponent (`1e9` is an `f64` in Rust). Hex literals are never floats.
pub fn is_float_literal(num: &str) -> bool {
    if num.starts_with("0x") || num.starts_with("0X") {
        return false;
    }
    if num.contains('.') || num.ends_with("f32") || num.ends_with("f64") {
        return true;
    }
    num.bytes()
        .zip(num.bytes().skip(1))
        .any(|(a, b)| (a == b'e' || a == b'E') && (b.is_ascii_digit() || b == b'+' || b == b'-'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .expect("test source must lex")
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_invisible() {
        let src = r##"
            // f64 in a line comment
            /* f64 in /* a nested */ block */
            let x = "f64 in a string";
            let y = r#"f64 in a raw string"#;
            let z = b"f64 bytes";
            real_f64_token
        "##;
        assert_eq!(idents(src), ["let", "x", "let", "y", "let", "z", "real_f64_token"]);
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").expect("lexes");
        let lifetimes = toks.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let chars = toks.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn escaped_strings_decode() {
        let toks = lex(r#"let s = "{\"ev\":\"drop\"}";"#).expect("lexes");
        let lit = toks.iter().find_map(|t| t.str_value()).expect("has a string literal");
        assert_eq!(lit, "{\"ev\":\"drop\"}");
    }

    #[test]
    fn numbers_and_floats() {
        assert!(is_float_literal("0.5"));
        assert!(is_float_literal("1e9"));
        assert!(is_float_literal("2f64"));
        assert!(!is_float_literal("42"));
        assert!(!is_float_literal("0x1F"));
        assert!(!is_float_literal("1u64"));
        let toks = lex("a.0 + 1..4 + 0.5").expect("lexes");
        let nums: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Num(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, ["0", "1", "4", "0.5"]);
    }

    #[test]
    fn line_numbers_attach_to_tokens() {
        let toks = lex("a\nb\n  c").expect("lexes");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 3]);
    }

    #[test]
    fn truncated_input_fails_loudly() {
        assert!(lex("let s = \"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
    }
}

//! The six rules of the lint wall. Each rule reads the workspace model and
//! pushes [`Finding`]s; carve-outs go through [`Ledger::claim`], so every
//! exemption is a committed, reasoned `LINT_LEDGER.toml` entry — and an
//! entry that stops matching anything becomes a *stale* finding itself.
//!
//! The catalog (DESIGN.md §15):
//!
//! | rule | what it enforces |
//! |---|---|
//! | `waiver-ledger` | every `#[allow]` of a walled lint is ledgered; no stale entries |
//! | `float-ban` | no `f32`/`f64` in the deterministic crates |
//! | `trait-matrix` | every `Policy` type also implements `Snapshot`, `Footprint`, `Instrumented` |
//! | `schema-sync` | sink-emitted `"ev"` names == `parse_trace` arms; obs counters documented |
//! | `unwrap-discipline` | no bare `.unwrap()` in non-test library code |
//! | `crate-root-hygiene` | every crate root carries `#![forbid(unsafe_code)]` |

use std::collections::{BTreeMap, BTreeSet};

use crate::ledger::Ledger;
use crate::lex::{is_float_literal, Tok};
use crate::report::Finding;
use crate::walk::{FileKind, SourceFile, Workspace};

/// Names of the rules, in evaluation order.
pub const RULE_NAMES: [&str; 6] = [
    "waiver-ledger",
    "float-ban",
    "trait-matrix",
    "schema-sync",
    "unwrap-discipline",
    "crate-root-hygiene",
];

/// Clippy lints from `clippy.toml` whose `#[allow]` sites must be ledgered,
/// plus the `unsafe_code` escape hatch.
const WALLED_LINTS: [&str; 3] =
    ["clippy::disallowed_methods", "clippy::disallowed_types", "unsafe_code"];

/// Run the named rules (all six when `filter` is `None`) over the
/// workspace. Stale-waiver detection only runs on a full, unfiltered pass:
/// a filtered run cannot know which entries the skipped rules would have
/// claimed.
pub fn run(ws: &Workspace, ledger: &Ledger, filter: Option<&[String]>) -> Vec<Finding> {
    let mut out = Vec::new();
    let active = |name: &str| filter.is_none_or(|f| f.iter().any(|r| r == name));

    if active("waiver-ledger") {
        waiver_ledger(ws, ledger, &mut out);
    }
    if active("float-ban") {
        float_ban(ws, ledger, &mut out);
    }
    if active("trait-matrix") {
        trait_matrix(ws, ledger, &mut out);
    }
    if active("schema-sync") {
        schema_sync(ws, ledger, &mut out);
    }
    if active("unwrap-discipline") {
        unwrap_discipline(ws, ledger, &mut out);
    }
    if active("crate-root-hygiene") {
        crate_root_hygiene(ws, ledger, &mut out);
    }
    if filter.is_none() {
        for w in ledger.stale() {
            out.push(Finding::new(
                "waiver-ledger",
                "LINT_LEDGER.toml",
                w.line,
                Some(&w.lint),
                format!(
                    "stale ledger entry: no live site matches file=\"{}\" lint=\"{}\"{}",
                    w.file,
                    w.lint,
                    w.item.as_deref().map(|i| format!(" item=\"{i}\"")).unwrap_or_default()
                ),
            ));
        }
    }
    out.sort();
    out
}

/// Rule 1: every `#[allow(...)]` (or `#[expect(...)]`) of a walled lint
/// must match a ledger entry for its file. The inverse — entries whose
/// site vanished — is reported by the stale pass in [`run`].
fn waiver_ledger(ws: &Workspace, ledger: &Ledger, out: &mut Vec<Finding>) {
    for file in &ws.files {
        for site in &file.model.lint_sites {
            if site.action != "allow" && site.action != "expect" {
                continue;
            }
            for lint in &site.lints {
                if !WALLED_LINTS.contains(&lint.as_str()) {
                    continue;
                }
                if !ledger.claim(&file.rel, lint, None) {
                    out.push(Finding::new(
                        "waiver-ledger",
                        &file.rel,
                        site.line,
                        Some(lint),
                        format!(
                            "`#[{}({lint})]` has no LINT_LEDGER.toml entry \
                             (file = \"{}\", lint = \"{lint}\")",
                            site.action, file.rel
                        ),
                    ));
                }
            }
        }
    }
}

/// Where the float ban applies inside a given file, if at all.
enum FloatScope {
    /// Whole file (minus test spans).
    Full,
    /// Everything outside the named module (minus test spans).
    OutsideMod(&'static str),
}

/// The deterministic scope: exact-rational cost accounting lives here, so a
/// float token anywhere in it can silently turn a certified ratio into an
/// approximation (DESIGN.md §9/§15).
fn float_scope(file: &SourceFile) -> Option<FloatScope> {
    if file.kind != FileKind::Lib {
        return None;
    }
    match file.crate_name.as_str() {
        "core" | "model" | "offline" | "check" => Some(FloatScope::Full),
        "engine" => match file.rel.as_str() {
            // Advisory wall-clock telemetry, documented non-deterministic.
            "crates/engine/src/sink.rs" | "crates/engine/src/par.rs" => None,
            "crates/engine/src/obs.rs" => Some(FloatScope::OutsideMod("advisory")),
            _ => Some(FloatScope::Full),
        },
        "search" if file.rel.ends_with("src/fitness.rs") => Some(FloatScope::Full),
        _ => None,
    }
}

/// Rule 2: no `f32`/`f64` type tokens and no float literals in the
/// deterministic crates.
fn float_ban(ws: &Workspace, ledger: &Ledger, out: &mut Vec<Finding>) {
    for file in &ws.files {
        let Some(scope) = float_scope(file) else { continue };
        for (idx, token) in file.model.tokens.iter().enumerate() {
            let float = match &token.tok {
                Tok::Ident(s) if s == "f32" || s == "f64" => Some(s.as_str()),
                Tok::Num(n) if is_float_literal(n) => Some(n.as_str()),
                _ => None,
            };
            let Some(text) = float else { continue };
            if file.model.in_test(idx) {
                continue;
            }
            if let FloatScope::OutsideMod(name) = scope {
                if file.model.in_mod(idx, name) {
                    continue;
                }
            }
            if ledger.claim(&file.rel, "float-ban", Some(text)) {
                continue;
            }
            out.push(Finding::new(
                "float-ban",
                &file.rel,
                token.line,
                Some(text),
                format!(
                    "float token `{text}` in deterministic crate `{}` \
                     (exact-rational accounting only; DESIGN.md §15)",
                    file.crate_name
                ),
            ));
        }
    }
}

/// Rule 3: every concrete type with a library `impl Policy` must also
/// implement `Snapshot` (checkpointing), `Footprint` (sparse-state
/// telemetry) and `Instrumented` (lemma/bench bookkeeping) somewhere in
/// library code — across files and crates.
fn trait_matrix(ws: &Workspace, ledger: &Ledger, out: &mut Vec<Finding>) {
    const MATRIX: [&str; 3] = ["Snapshot", "Footprint", "Instrumented"];
    let mut have: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut policy_sites: Vec<(&SourceFile, u32, &str)> = Vec::new();
    for file in &ws.files {
        if file.kind != FileKind::Lib || file.is_compat() {
            continue;
        }
        for imp in &file.model.impls {
            if imp.in_test {
                continue;
            }
            let Some(target) = imp.target.as_deref() else { continue };
            if imp.trait_name == "Policy" {
                policy_sites.push((file, imp.line, target));
            }
            if MATRIX.contains(&imp.trait_name.as_str()) {
                have.entry(imp.trait_name.as_str()).or_default().insert(target);
            }
        }
    }
    for (file, line, target) in policy_sites {
        let missing: Vec<&str> = MATRIX
            .iter()
            .filter(|t| !have.get(**t).is_some_and(|set| set.contains(target)))
            .copied()
            .collect();
        if missing.is_empty() || ledger.claim(&file.rel, "trait-matrix", Some(target)) {
            continue;
        }
        out.push(Finding::new(
            "trait-matrix",
            &file.rel,
            line,
            Some(target),
            format!(
                "`{target}` implements `Policy` but not {} \
                 (a policy must keep checkpointing and telemetry; DESIGN.md §15)",
                missing.iter().map(|t| format!("`{t}`")).collect::<Vec<_>>().join(", ")
            ),
        ));
    }
}

const SINK_RS: &str = "crates/engine/src/sink.rs";
const OBS_RS: &str = "crates/engine/src/obs.rs";

/// Rule 4: the trace schema cannot drift apart. (a) The set of
/// `"ev":"..."` event names emitted by `rrs_engine::sink` equals the set
/// of arms in `parse_trace_line`; (b) every counter name registered in
/// `obs::names` is documented in DESIGN.md §13.
fn schema_sync(ws: &Workspace, ledger: &Ledger, out: &mut Vec<Finding>) {
    if let Some(sink) = ws.file(SINK_RS) {
        let mut emitted: BTreeMap<String, u32> = BTreeMap::new();
        for (idx, token) in sink.model.tokens.iter().enumerate() {
            if sink.model.in_test(idx) {
                continue;
            }
            let Some(value) = token.str_value() else { continue };
            let mut rest = value;
            while let Some(at) = rest.find("\"ev\":\"") {
                let name_start = &rest[at + 6..];
                let name: String =
                    name_start.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
                if !name.is_empty() {
                    emitted.entry(name).or_insert(token.line);
                }
                rest = name_start;
            }
        }
        match sink.model.fn_span("parse_trace_line") {
            Some((start, end)) => {
                let mut parsed: BTreeMap<String, u32> = BTreeMap::new();
                let toks = &sink.model.tokens;
                for idx in start..=end.min(toks.len().saturating_sub(1)) {
                    let Some(value) = toks[idx].str_value() else { continue };
                    let is_arm = toks.get(idx + 1).is_some_and(|t| t.is_punct('='))
                        && toks.get(idx + 2).is_some_and(|t| t.is_punct('>'));
                    if is_arm {
                        parsed.entry(value.to_string()).or_insert(toks[idx].line);
                    }
                }
                for (name, line) in &emitted {
                    if !parsed.contains_key(name)
                        && !ledger.claim(SINK_RS, "schema-sync", Some(name))
                    {
                        out.push(Finding::new(
                            "schema-sync",
                            SINK_RS,
                            *line,
                            Some(name),
                            format!(
                                "event \"{name}\" is emitted by sink but has no \
                                 `parse_trace_line` arm"
                            ),
                        ));
                    }
                }
                for (name, line) in &parsed {
                    if !emitted.contains_key(name)
                        && !ledger.claim(SINK_RS, "schema-sync", Some(name))
                    {
                        out.push(Finding::new(
                            "schema-sync",
                            SINK_RS,
                            *line,
                            Some(name),
                            format!(
                                "`parse_trace_line` handles \"{name}\" but sink never emits it"
                            ),
                        ));
                    }
                }
            }
            None => out.push(Finding::new(
                "schema-sync",
                SINK_RS,
                0,
                None,
                "fn `parse_trace_line` not found; the schema cross-check has lost its anchor"
                    .to_string(),
            )),
        }
    }

    if let Some(obs) = ws.file(OBS_RS) {
        let Some((start, end)) = obs.model.mod_span("names") else {
            out.push(Finding::new(
                "schema-sync",
                OBS_RS,
                0,
                None,
                "mod `names` not found; the counter-name cross-check has lost its anchor"
                    .to_string(),
            ));
            return;
        };
        let section = ws.design_md.as_deref().map(design_section_13).unwrap_or_default();
        for idx in start..=end.min(obs.model.tokens.len().saturating_sub(1)) {
            if obs.model.in_test(idx) {
                continue;
            }
            let Some(name) = obs.model.tokens[idx].str_value() else { continue };
            if section.contains(&format!("`{name}`")) {
                continue;
            }
            if ledger.claim(OBS_RS, "schema-sync", Some(name)) {
                continue;
            }
            out.push(Finding::new(
                "schema-sync",
                OBS_RS,
                obs.model.tokens[idx].line,
                Some(name),
                format!(
                    "counter `{name}` is registered in obs::names but not named in DESIGN.md §13"
                ),
            ));
        }
    }
}

/// Extract the §13 section (from `## 13` to the next `## `).
fn design_section_13(design: &str) -> String {
    let mut out = String::new();
    let mut inside = false;
    for line in design.lines() {
        if line.starts_with("## ") {
            inside = line.starts_with("## 13");
        }
        if inside {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Rule 5: no bare `.unwrap()` in non-test library (or binary) code; use
/// `.expect("invariant")` so the panic names what was violated.
fn unwrap_discipline(ws: &Workspace, ledger: &Ledger, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if file.is_compat() || !matches!(file.kind, FileKind::Lib | FileKind::Bin) {
            continue;
        }
        let toks = &file.model.tokens;
        for idx in 0..toks.len() {
            let bare_unwrap = toks[idx].is_punct('.')
                && toks.get(idx + 1).is_some_and(|t| t.is_ident("unwrap"))
                && toks.get(idx + 2).is_some_and(|t| t.is_punct('('))
                && toks.get(idx + 3).is_some_and(|t| t.is_punct(')'));
            if !bare_unwrap || file.model.in_test(idx) {
                continue;
            }
            if ledger.claim(&file.rel, "unwrap-discipline", None) {
                continue;
            }
            out.push(Finding::new(
                "unwrap-discipline",
                &file.rel,
                toks[idx + 1].line,
                None,
                "bare `.unwrap()` in library code; use `.expect(\"<invariant>\")` \
                 stating what cannot happen (DESIGN.md §15)"
                    .to_string(),
            ));
        }
    }
}

/// Rule 6: every crate root opens with `#![forbid(unsafe_code)]`. A
/// crate-level `deny` (overridable, unlike `forbid`) needs a ledger entry.
fn crate_root_hygiene(ws: &Workspace, ledger: &Ledger, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if !file.is_crate_root() {
            continue;
        }
        let unsafe_level = |action: &str| {
            file.model.root_attrs.iter().any(|a| {
                a.head() == Some(action) && a.lint_paths().iter().any(|l| l == "unsafe_code")
            })
        };
        if unsafe_level("forbid") {
            continue;
        }
        if unsafe_level("deny") && ledger.claim(&file.rel, "crate-root-hygiene", None) {
            continue;
        }
        out.push(Finding::new(
            "crate-root-hygiene",
            &file.rel,
            1,
            None,
            "crate root must carry `#![forbid(unsafe_code)]` (or a ledgered `deny`; \
             DESIGN.md §15)"
                .to_string(),
        ));
    }
}

//! The `rrs-lint` binary: run the lint wall over the workspace.
//!
//! ```text
//! cargo run -p rrs-lint --                 # full pass, text report
//! cargo run -p rrs-lint -- --json          # machine-readable report
//! cargo run -p rrs-lint -- --rule float-ban --rule trait-matrix
//! cargo run -p rrs-lint -- --root /path/to/tree
//! ```
//!
//! Exit codes: 0 = wall holds, 1 = findings, 2 = the analyzer could not run.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut rules: Vec<String> = Vec::new();
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--rule" => match args.next() {
                Some(name) => rules.push(name),
                None => return usage("--rule needs a rule name"),
            },
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => return usage("--root needs a path"),
            },
            "--list-rules" => {
                for name in rrs_lint::RULE_NAMES {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                eprintln!("usage: rrs-lint [--json] [--rule NAME]... [--root PATH] [--list-rules]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // Default root: the workspace this binary was built from.
    let root =
        root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));
    let config = rrs_lint::Config { rules: if rules.is_empty() { None } else { Some(rules) } };

    match rrs_lint::analyze(&root, &config) {
        Ok(findings) => {
            if json {
                print!("{}", rrs_lint::json::encode(&findings));
            } else {
                print!("{}", rrs_lint::report::render_text(&findings));
            }
            if findings.is_empty() {
                eprintln!("rrs-lint: wall holds (0 findings)");
                ExitCode::SUCCESS
            } else {
                eprintln!("rrs-lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("rrs-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("rrs-lint: {msg}");
    eprintln!("usage: rrs-lint [--json] [--rule NAME]... [--root PATH] [--list-rules]");
    ExitCode::from(2)
}

//! Workspace discovery: find every `.rs` file under the repo root, classify
//! it (crate, target kind), and lex + outline it into a [`FileModel`].
//!
//! The walk is path-convention based, mirroring how cargo lays the
//! workspace out: `crates/<name>/src/**` is library code of `<name>`,
//! `src/**` is the root crate, `src/bin/**` are binary frontends, and
//! anything under a `tests/`, `benches/` or `examples/` directory is
//! non-library code. Directories named `target`, `.git`, `.github` or
//! `fixtures` are skipped — the last one keeps this crate's deliberately
//! bad fixture sources out of the real workspace run.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lex;
use crate::outline::{self, FileModel};

/// Which kind of cargo target a source file belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`src/**` minus `src/bin/`).
    Lib,
    /// A binary frontend (`src/bin/**`, `src/main.rs`).
    Bin,
    /// Integration tests or benches (`tests/**`, `benches/**`).
    TestOrBench,
    /// Examples (`examples/**`).
    Example,
}

/// One analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path with `/` separators (the ledger's key format).
    pub rel: String,
    /// Crate directory name: `core` for `crates/core`, `compat/rand` for
    /// the vendored shims, `rrs` for the workspace-root package.
    pub crate_name: String,
    pub kind: FileKind,
    pub model: FileModel,
}

impl SourceFile {
    /// Whether this file belongs to a vendored compat shim. The shims
    /// mirror upstream APIs (including their panicking methods), so the
    /// style rules don't apply; only waiver accounting does.
    pub fn is_compat(&self) -> bool {
        self.crate_name.starts_with("compat/")
    }

    /// Whether this is a crate-root file (`src/lib.rs` of some member).
    pub fn is_crate_root(&self) -> bool {
        self.rel == "src/lib.rs" || self.rel.ends_with("/src/lib.rs")
    }
}

/// The analyzed workspace: sources plus the sibling documents some rules
/// cross-check.
#[derive(Debug)]
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
    /// `DESIGN.md`, if present.
    pub design_md: Option<String>,
    /// `LINT_LEDGER.toml` raw text, if present.
    pub ledger_text: Option<String>,
}

impl Workspace {
    /// Look a source file up by repo-relative path.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

const SKIP_DIRS: [&str; 5] = ["target", ".git", ".github", "fixtures", "related"];

/// Walk `root` and build the workspace model. Fails loudly on I/O or lex
/// errors: the analyzer must never silently skip a file it was meant to
/// check.
pub fn load(root: &Path) -> Result<Workspace, String> {
    let mut rs_files = Vec::new();
    collect(root, root, &mut rs_files)?;
    rs_files.sort();

    let mut files = Vec::with_capacity(rs_files.len());
    for rel in rs_files {
        let path = root.join(&rel);
        let src = fs::read_to_string(&path).map_err(|e| format!("read {rel}: {e}"))?;
        let tokens = lex::lex(&src).map_err(|e| format!("{rel}: {e}"))?;
        let model = outline::outline(tokens);
        let (crate_name, kind) = classify(&rel);
        files.push(SourceFile { rel, crate_name, kind, model });
    }

    let design_md = fs::read_to_string(root.join("DESIGN.md")).ok();
    let ledger_text = fs::read_to_string(root.join("LINT_LEDGER.toml")).ok();
    Ok(Workspace { root: root.to_path_buf(), files, design_md, ledger_text })
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("strip prefix: {e}"))?
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Classify a repo-relative path into (crate name, target kind).
fn classify(rel: &str) -> (String, FileKind) {
    let segs: Vec<&str> = rel.split('/').collect();
    let crate_name = if segs.first() == Some(&"crates") {
        if segs.get(1) == Some(&"compat") {
            format!("compat/{}", segs.get(2).copied().unwrap_or_default())
        } else {
            segs.get(1).copied().unwrap_or_default().to_string()
        }
    } else {
        "rrs".to_string()
    };
    let kind = if segs.contains(&"tests") || segs.contains(&"benches") {
        FileKind::TestOrBench
    } else if segs.contains(&"examples") {
        FileKind::Example
    } else if segs.contains(&"bin") || rel.ends_with("src/main.rs") {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    (crate_name, kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_follows_path_conventions() {
        assert_eq!(classify("crates/core/src/dlru.rs"), ("core".into(), FileKind::Lib));
        assert_eq!(classify("crates/core/tests/lemmas.rs"), ("core".into(), FileKind::TestOrBench));
        assert_eq!(
            classify("crates/bench/benches/ablations.rs"),
            ("bench".into(), FileKind::TestOrBench)
        );
        assert_eq!(
            classify("crates/compat/rand/src/lib.rs"),
            ("compat/rand".into(), FileKind::Lib)
        );
        assert_eq!(classify("src/bin/rrs-cli.rs"), ("rrs".into(), FileKind::Bin));
        assert_eq!(classify("src/lib.rs"), ("rrs".into(), FileKind::Lib));
        assert_eq!(classify("tests/golden.rs"), ("rrs".into(), FileKind::TestOrBench));
        assert_eq!(classify("examples/showdown.rs"), ("rrs".into(), FileKind::Example));
    }
}

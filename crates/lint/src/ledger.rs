//! The waiver ledger: `LINT_LEDGER.toml`, the single committed source of
//! truth for every carve-out from the lint wall.
//!
//! The parser is a strict, hand-rolled subset of TOML — exactly what the
//! ledger needs and nothing more: comments, blank lines, `[[waiver]]`
//! array-of-table headers, and `key = "basic string"` pairs. Anything else
//! is a hard parse error, reported as a finding against the ledger file
//! itself; a ledger that cannot be read in full cannot vouch for anything.
//!
//! Entry shape:
//!
//! ```toml
//! [[waiver]]
//! file = "crates/engine/src/par.rs"        # repo-relative, `/` separators
//! lint = "clippy::disallowed_methods"      # clippy lint or rrs-lint rule
//! item = "Stopwatch"                       # optional discriminator
//! reason = "why this site is exempt"       # required, non-empty
//! ```
//!
//! `lint` names either a clippy lint that an `#[allow]` attribute in
//! `file` must match (rule `waiver-ledger`), or one of this crate's rule
//! names, suppressing that rule's findings in `file` (optionally only for
//! the named `item`). Every entry must justify at least one live site:
//! unused entries are *stale* and are themselves findings.

use std::cell::Cell;

/// One ledger entry.
#[derive(Debug)]
pub struct Waiver {
    pub file: String,
    pub lint: String,
    pub item: Option<String>,
    pub reason: String,
    /// Line of the `[[waiver]]` header in the ledger file.
    pub line: u32,
    /// Set when the entry matched a live allow-site or suppressed a
    /// finding; clear means stale.
    used: Cell<bool>,
}

/// The parsed ledger.
#[derive(Debug, Default)]
pub struct Ledger {
    pub waivers: Vec<Waiver>,
}

impl Ledger {
    /// Find (and mark used) a waiver covering `(file, lint, item)`. An
    /// entry without an `item` covers every item in the file for that lint.
    pub fn claim(&self, file: &str, lint: &str, item: Option<&str>) -> bool {
        for w in &self.waivers {
            if w.file == file && w.lint == lint {
                let item_matches = match (&w.item, item) {
                    (None, _) => true,
                    (Some(want), Some(have)) => want == have,
                    (Some(_), None) => false,
                };
                if item_matches {
                    w.used.set(true);
                    return true;
                }
            }
        }
        false
    }

    /// Entries that never matched a live site.
    pub fn stale(&self) -> impl Iterator<Item = &Waiver> {
        self.waivers.iter().filter(|w| !w.used.get())
    }
}

/// Parse the ledger text. Errors name the offending 1-based line.
pub fn parse(text: &str) -> Result<Ledger, String> {
    let mut ledger = Ledger::default();
    let mut current: Option<(Waiver, bool)> = None; // (entry, saw_reason)

    let finish =
        |current: &mut Option<(Waiver, bool)>, ledger: &mut Ledger| -> Result<(), String> {
            if let Some((w, saw_reason)) = current.take() {
                if w.file.is_empty() {
                    return Err(format!("line {}: waiver missing `file`", w.line));
                }
                if w.lint.is_empty() {
                    return Err(format!("line {}: waiver missing `lint`", w.line));
                }
                if !saw_reason || w.reason.is_empty() {
                    return Err(format!("line {}: waiver missing non-empty `reason`", w.line));
                }
                ledger.waivers.push(w);
            }
            Ok(())
        };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[waiver]]" {
            finish(&mut current, &mut ledger)?;
            current = Some((
                Waiver {
                    file: String::new(),
                    lint: String::new(),
                    item: None,
                    reason: String::new(),
                    line: lineno,
                    used: Cell::new(false),
                },
                false,
            ));
            continue;
        }
        let Some((key, value)) = parse_kv(line) else {
            return Err(format!("line {lineno}: expected `[[waiver]]` or `key = \"value\"`"));
        };
        let Some((w, saw_reason)) = current.as_mut() else {
            return Err(format!("line {lineno}: `{key}` outside a [[waiver]] entry"));
        };
        match key {
            "file" => w.file = value,
            "lint" => w.lint = value,
            "item" => w.item = Some(value),
            "reason" => {
                w.reason = value;
                *saw_reason = true;
            }
            other => return Err(format!("line {lineno}: unknown key `{other}`")),
        }
    }
    finish(&mut current, &mut ledger)?;
    Ok(ledger)
}

/// Drop a trailing `#` comment, respecting basic-string quoting.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Parse `key = "value"`, decoding the two escapes basic strings need here.
fn parse_kv(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let rest = rest.trim();
    let inner = rest.strip_prefix('"')?.strip_suffix('"')?;
    let mut value = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '"' => value.push('"'),
                '\\' => value.push('\\'),
                _ => return None,
            }
        } else if c == '"' {
            // An unescaped interior quote means `strip_suffix` cut the
            // wrong quote; reject rather than guess.
            return None;
        } else {
            value.push(c);
        }
    }
    Some((key.trim(), value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_claims() {
        let text = "# header comment\n\n[[waiver]]\nfile = \"a/b.rs\"  # trailing\nlint = \"clippy::disallowed_methods\"\nreason = \"because\"\n\n[[waiver]]\nfile = \"c.rs\"\nlint = \"trait-matrix\"\nitem = \"Foo\"\nreason = \"engine-internal\"\n";
        let ledger = parse(text).expect("ledger parses");
        assert_eq!(ledger.waivers.len(), 2);
        assert!(ledger.claim("a/b.rs", "clippy::disallowed_methods", None));
        assert!(!ledger.claim("a/b.rs", "clippy::disallowed_types", None));
        assert!(ledger.claim("c.rs", "trait-matrix", Some("Foo")));
        assert!(!ledger.claim("c.rs", "trait-matrix", Some("Bar")));
        assert_eq!(ledger.stale().count(), 0);
    }

    #[test]
    fn itemless_entry_covers_any_item_and_stale_tracks_usage() {
        let text = "[[waiver]]\nfile = \"x.rs\"\nlint = \"unwrap-discipline\"\nreason = \"r\"\n";
        let ledger = parse(text).expect("ledger parses");
        assert_eq!(ledger.stale().count(), 1);
        assert!(ledger.claim("x.rs", "unwrap-discipline", Some("anything")));
        assert_eq!(ledger.stale().count(), 0);
    }

    #[test]
    fn rejects_malformed_entries() {
        assert!(parse("[[waiver]]\nfile = \"a\"\nlint = \"b\"\n").is_err(), "missing reason");
        assert!(parse("file = \"a\"\n").is_err(), "key outside entry");
        assert!(parse("[[waiver]]\nnope = \"a\"\n").is_err(), "unknown key");
        assert!(parse("[[waiver]]\nfile = bare\n").is_err(), "unquoted value");
        assert!(parse("[[waiver]]\nfile = \"a\" trailing\n").is_err(), "trailing junk");
    }
}

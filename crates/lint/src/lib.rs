//! `rrs-lint`: the determinism wall as a program (DESIGN.md §15).
//!
//! Every result this workspace publishes must be a pure function of
//! (instance, policy, locations, speed, seed). `clippy.toml` can ban two
//! types and two methods; everything else the wall promises — that every
//! carve-out is audited, that no deterministic crate computes with floats,
//! that a policy cannot silently lose its checkpoint or telemetry surface,
//! that the trace schema's writer and parser agree — used to live in
//! comments. This crate turns those promises into a dependency-free
//! static-analysis pass over the workspace's own source tree: a hand-rolled
//! lexer ([`lex`]), a structural outline ([`outline`]), a committed waiver
//! ledger ([`ledger`], `LINT_LEDGER.toml`), and six rules ([`rules`]).
//!
//! Run it as a binary (`cargo run -p rrs-lint -- [--json] [--rule NAME]`,
//! nonzero exit on any finding), or as a library (`tests/lint_wall.rs`
//! runs [`analyze`] over the repo tree in the normal test suite).

#![forbid(unsafe_code)]

pub mod json;
pub mod ledger;
pub mod lex;
pub mod outline;
pub mod report;
pub mod rules;
pub mod walk;

use std::path::Path;

pub use report::Finding;
pub use rules::RULE_NAMES;

/// What to run.
#[derive(Debug, Default)]
pub struct Config {
    /// Restrict to these rules; `None` runs all six plus the stale-waiver
    /// pass (which needs a full run to know what is unused).
    pub rules: Option<Vec<String>>,
}

/// Analyze the workspace rooted at `root`. Returns the sorted findings
/// (empty means the wall holds); `Err` means the analyzer itself could not
/// run (I/O, lex failure, unknown rule name).
pub fn analyze(root: &Path, config: &Config) -> Result<Vec<Finding>, String> {
    if let Some(filter) = &config.rules {
        for name in filter {
            if !RULE_NAMES.contains(&name.as_str()) {
                return Err(format!(
                    "unknown rule `{name}` (expected one of: {})",
                    RULE_NAMES.join(", ")
                ));
            }
        }
    }
    let ws = walk::load(root)?;
    let (ledger, mut findings) = match &ws.ledger_text {
        Some(text) => match ledger::parse(text) {
            Ok(l) => (l, Vec::new()),
            Err(e) => (
                ledger::Ledger::default(),
                vec![Finding::new(
                    "waiver-ledger",
                    "LINT_LEDGER.toml",
                    0,
                    None,
                    format!("ledger does not parse: {e}"),
                )],
            ),
        },
        None => (ledger::Ledger::default(), Vec::new()),
    };
    findings.extend(rules::run(&ws, &ledger, config.rules.as_deref()));
    findings.sort();
    Ok(findings)
}

//! Findings: what a rule reports, and the text rendering.

use std::fmt;

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative file the finding is anchored to.
    pub file: String,
    /// 1-based line (0 when the finding is about the file as a whole).
    pub line: u32,
    /// Rule name (one of [`crate::rules::RULE_NAMES`]).
    pub rule: String,
    /// The discriminator a ledger waiver would need to match (type name,
    /// lint path, counter name, ...), when one exists.
    pub item: Option<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    pub fn new(rule: &str, file: &str, line: u32, item: Option<&str>, message: String) -> Self {
        Self {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            item: item.map(str::to_string),
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
        } else {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.message)
        }
    }
}

/// Render findings as the CLI's text report.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out
}

//! Machine-readable output: a hand-rolled JSON writer and parser for the
//! findings report, in the workspace's no-serde tradition (cf.
//! `rrs_engine::sink` and `rrs_bench::artifact`).
//!
//! The encoding is canonical — fixed key order, no whitespace options — so
//! `parse(encode(x)) == x` and `encode(parse(s)) == s` both hold; the
//! fixture suite uses the round trip as the schema's own regression test.

use crate::report::Finding;

/// Schema version stamped into the report envelope.
pub const LINT_SCHEMA_VERSION: u64 = 1;

/// Encode findings as the canonical JSON report:
/// `{"schema":1,"findings":[{...},...]}` with one finding object per line.
pub fn encode(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":");
    out.push_str(&LINT_SCHEMA_VERSION.to_string());
    out.push_str(",\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"rule\":");
        write_str(&mut out, &f.rule);
        out.push_str(",\"file\":");
        write_str(&mut out, &f.file);
        out.push_str(",\"line\":");
        out.push_str(&f.line.to_string());
        out.push_str(",\"item\":");
        match &f.item {
            Some(item) => write_str(&mut out, item),
            None => out.push_str("null"),
        }
        out.push_str(",\"message\":");
        write_str(&mut out, &f.message);
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Decode a report produced by [`encode`].
pub fn decode(text: &str) -> Result<Vec<Finding>, String> {
    let mut p = Parser { chars: text.chars().collect(), pos: 0 };
    p.ws();
    p.expect('{')?;
    p.key("schema")?;
    let schema = p.number()?;
    if schema != LINT_SCHEMA_VERSION {
        return Err(format!("unsupported lint report schema {schema}"));
    }
    p.ws();
    p.expect(',')?;
    p.key("findings")?;
    p.ws();
    p.expect('[')?;
    let mut findings = Vec::new();
    p.ws();
    if !p.eat(']') {
        loop {
            findings.push(p.finding()?);
            p.ws();
            if p.eat(']') {
                break;
            }
            p.expect(',')?;
        }
    }
    p.ws();
    p.expect('}')?;
    p.ws();
    if p.pos != p.chars.len() {
        return Err("trailing content after report".to_string());
    }
    Ok(findings)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn ws(&mut self) {
        while self.chars.get(self.pos).is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.chars.get(self.pos) == Some(&c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.ws();
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!("expected '{c}' at offset {}", self.pos))
        }
    }

    /// `"name":` with surrounding whitespace.
    fn key(&mut self, name: &str) -> Result<(), String> {
        self.ws();
        let got = self.string()?;
        if got != name {
            return Err(format!("expected key \"{name}\", got \"{got}\""));
        }
        self.expect(':')
    }

    fn string(&mut self) -> Result<String, String> {
        self.ws();
        if !self.eat('"') {
            return Err(format!("expected string at offset {}", self.pos));
        }
        let mut s = String::new();
        loop {
            let c = *self.chars.get(self.pos).ok_or("unterminated string")?;
            self.pos += 1;
            match c {
                '"' => return Ok(s),
                '\\' => {
                    let esc = *self.chars.get(self.pos).ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        '"' => s.push('"'),
                        '\\' => s.push('\\'),
                        '/' => s.push('/'),
                        'n' => s.push('\n'),
                        't' => s.push('\t'),
                        'r' => s.push('\r'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let h = *self.chars.get(self.pos).ok_or("truncated \\u escape")?;
                                self.pos += 1;
                                code = code * 16
                                    + h.to_digit(16).ok_or("bad hex digit in \\u escape")?;
                            }
                            s.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                        }
                        other => return Err(format!("unsupported escape '\\{other}'")),
                    }
                }
                c => s.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        self.ws();
        let start = self.pos;
        while self.chars.get(self.pos).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected number at offset {}", self.pos));
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse::<u64>()
            .map_err(|e| format!("bad number: {e}"))
    }

    fn finding(&mut self) -> Result<Finding, String> {
        self.expect('{')?;
        self.key("rule")?;
        let rule = self.string()?;
        self.expect(',')?;
        self.key("file")?;
        let file = self.string()?;
        self.expect(',')?;
        self.key("line")?;
        let line = u32::try_from(self.number()?).map_err(|_| "line out of range".to_string())?;
        self.expect(',')?;
        self.key("item")?;
        self.ws();
        let item = if self.chars.get(self.pos) == Some(&'n') {
            for want in "null".chars() {
                if !self.eat(want) {
                    return Err("expected null".to_string());
                }
            }
            None
        } else {
            Some(self.string()?)
        };
        self.expect(',')?;
        self.key("message")?;
        let message = self.string()?;
        self.expect('}')?;
        Ok(Finding { rule, file, line, item, message })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_identity_both_ways() {
        let findings = vec![
            Finding::new("float-ban", "crates/core/src/x.rs", 12, None, "f64 token".to_string()),
            Finding::new(
                "trait-matrix",
                "crates/core/src/y.rs",
                3,
                Some("Foo"),
                "missing \"Snapshot\"\timpl".to_string(),
            ),
        ];
        let json = encode(&findings);
        let back = decode(&json).expect("decodes");
        assert_eq!(back, findings);
        assert_eq!(encode(&back), json, "re-encode reproduces bytes");
    }

    #[test]
    fn empty_report_round_trips() {
        let json = encode(&[]);
        assert_eq!(decode(&json).expect("decodes"), vec![]);
        assert_eq!(encode(&[]), json);
    }

    #[test]
    fn rejects_wrong_schema_and_trailing_junk() {
        assert!(decode("{\"schema\":99,\"findings\":[]}").is_err());
        let mut json = encode(&[]);
        json.push_str("extra");
        assert!(decode(&json).is_err());
    }
}

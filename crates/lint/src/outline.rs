//! Structural outline of one lexed source file: attributes, `#[cfg(test)]`
//! spans, `mod` spans, function bodies, and trait-impl signatures.
//!
//! This is not a Rust parser. It is a single linear walk over the token
//! stream with a brace-depth counter and a one-slot "deferred item" latch:
//! when an item header (`mod name`, `fn name`, `impl ... for Type`) or a
//! `#[cfg(test)]` attribute is seen, the walk latches it and attaches it to
//! the next `{` at the same nesting level (or cancels it at a `;`, for
//! body-less declarations). That is enough structure for every rule in this
//! crate — which tokens are test-only, which module a token lives in, which
//! types implement which traits — while staying a few hundred lines of
//! dependency-free code.

use crate::lex::{Tok, Token};

/// An attribute, `#[...]` or `#![...]`.
#[derive(Clone, Debug)]
pub struct Attr {
    /// `true` for inner attributes (`#![...]`).
    pub inner: bool,
    /// The tokens between the brackets.
    pub tokens: Vec<Token>,
    /// Line of the `#`.
    pub line: u32,
}

impl Attr {
    /// First identifier of the attribute path (`allow`, `cfg`, `test`, ...).
    pub fn head(&self) -> Option<&str> {
        self.tokens.first().and_then(|t| t.ident())
    }

    /// Whether this attribute marks test-only code: `#[cfg(test)]` (with
    /// `test` anywhere in the predicate, so `cfg(any(test, ...))` counts)
    /// or `#[test]` itself.
    pub fn is_test_marker(&self) -> bool {
        match self.head() {
            Some("test") => true,
            Some("cfg") => self.tokens.iter().any(|t| t.is_ident("test")),
            _ => false,
        }
    }

    /// For `allow`/`expect`/`deny`/`forbid` attributes: the lint paths
    /// listed between the parentheses, rendered with `::` separators.
    pub fn lint_paths(&self) -> Vec<String> {
        let mut paths = Vec::new();
        let mut current = String::new();
        for t in self.tokens.iter().skip(1) {
            match &t.tok {
                Tok::Ident(s) => {
                    if !current.is_empty() && !current.ends_with("::") {
                        // Two idents without `::` (e.g. `reason = "..."`
                        // keys): start over.
                        current.clear();
                    }
                    current.push_str(s);
                }
                Tok::Punct(':') => {
                    if !current.is_empty() {
                        current.push(':');
                    }
                }
                Tok::Punct(',') | Tok::Punct(')') => {
                    if !current.is_empty() {
                        paths.push(current.trim_matches(':').to_string());
                        current.clear();
                    }
                }
                _ => current.clear(),
            }
        }
        if !current.is_empty() {
            paths.push(current.trim_matches(':').to_string());
        }
        paths
    }
}

/// A lint-level attribute site (`allow`/`expect`/`deny`/`forbid`).
#[derive(Clone, Debug)]
pub struct LintSite {
    /// `allow`, `expect`, `deny`, or `forbid`.
    pub action: String,
    /// The lints named, e.g. `clippy::disallowed_methods`, `unsafe_code`.
    pub lints: Vec<String>,
    /// `true` for `#![...]` (crate- or module-level).
    pub inner: bool,
    pub line: u32,
    /// Whether the site sits in test-only code.
    pub in_test: bool,
}

/// A `mod name { ... }` span, by token index.
#[derive(Clone, Debug)]
pub struct ModSpan {
    pub name: String,
    /// Token range `[open_brace, close_brace]`.
    pub start: usize,
    pub end: usize,
}

/// A `fn name(...) { ... }` body span, by token index.
#[derive(Clone, Debug)]
pub struct FnSpan {
    pub name: String,
    pub start: usize,
    pub end: usize,
}

/// A `impl [<G>] TraitPath for Type { ... }` signature.
#[derive(Clone, Debug)]
pub struct ImplSig {
    /// Last segment of the trait path (`Policy` for `crate::policy::Policy`).
    pub trait_name: String,
    /// Last segment of the target type path, or `None` for impls on
    /// references, `Box`, or bare generic parameters (forwarding impls, not
    /// concrete policies).
    pub target: Option<String>,
    pub line: u32,
    /// Whether the impl sits in test-only code.
    pub in_test: bool,
}

/// The per-file structural model every rule consumes.
#[derive(Clone, Debug, Default)]
pub struct FileModel {
    pub tokens: Vec<Token>,
    /// All attributes, in source order.
    pub attrs: Vec<Attr>,
    /// Inner attributes seen before the first item (the crate/module root
    /// attribute block).
    pub root_attrs: Vec<Attr>,
    pub lint_sites: Vec<LintSite>,
    pub mods: Vec<ModSpan>,
    pub fns: Vec<FnSpan>,
    pub impls: Vec<ImplSig>,
    /// Token index ranges `[start, end]` (inclusive braces) of
    /// `#[cfg(test)]` / `#[test]` items.
    pub test_spans: Vec<(usize, usize)>,
}

impl FileModel {
    /// Whether the token at `idx` lies inside a test-only span.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| idx >= s && idx <= e)
    }

    /// Whether the token at `idx` lies inside a `mod` named `name`
    /// (at any nesting level).
    pub fn in_mod(&self, idx: usize, name: &str) -> bool {
        self.mods.iter().any(|m| m.name == name && idx >= m.start && idx <= m.end)
    }

    /// The span of the first `mod` with this name, if present.
    pub fn mod_span(&self, name: &str) -> Option<(usize, usize)> {
        self.mods.iter().find(|m| m.name == name).map(|m| (m.start, m.end))
    }

    /// The body span of the first `fn` with this name, if present.
    pub fn fn_span(&self, name: &str) -> Option<(usize, usize)> {
        self.fns.iter().find(|f| f.name == name).map(|f| (f.start, f.end))
    }
}

#[derive(Clone, Debug)]
enum FrameKind {
    Mod(String),
    Fn(String),
    Other,
}

struct OpenFrame {
    kind: FrameKind,
    is_test: bool,
    open_idx: usize,
    /// Brace depth *after* the opening `{`; the frame closes at the `}`
    /// that returns to `depth - 1`.
    depth: usize,
}

struct Deferred {
    kind: FrameKind,
    is_test: bool,
    /// Paren/bracket depth at latch time; a `;` at this depth cancels the
    /// deferral (body-less item), one inside `[u8; 4]` does not.
    grouping: usize,
}

/// Build the structural model for one file's tokens.
pub fn outline(tokens: Vec<Token>) -> FileModel {
    let mut model = FileModel { tokens, ..FileModel::default() };
    let tokens = std::mem::take(&mut model.tokens);
    let mut depth = 0usize;
    let mut grouping = 0usize;
    let mut open: Vec<OpenFrame> = Vec::new();
    let mut deferred: Option<Deferred> = None;
    let mut pending_test_attr = false;
    let mut seen_item = false;

    let mut i = 0usize;
    while i < tokens.len() {
        // Attributes are parsed and skipped as a unit so their contents
        // never look like item keywords to the walk below.
        if tokens[i].is_punct('#') {
            if let Some((attr, next)) = parse_attr(&tokens, i) {
                if attr.is_test_marker() && !attr.inner {
                    pending_test_attr = true;
                }
                record_attr(&mut model, &attr, &open, seen_item);
                model.attrs.push(attr);
                i = next;
                continue;
            }
        }

        match &tokens[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                seen_item = true;
                if let Some(d) = deferred.take() {
                    open.push(OpenFrame { kind: d.kind, is_test: d.is_test, open_idx: i, depth });
                } else if pending_test_attr {
                    // `#[cfg(test)]` directly on a braced item with no
                    // tracked keyword (struct, static initializer, ...).
                    open.push(OpenFrame {
                        kind: FrameKind::Other,
                        is_test: true,
                        open_idx: i,
                        depth,
                    });
                    pending_test_attr = false;
                }
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if open.last().is_some_and(|f| f.depth == depth + 1) {
                    let f = open.pop().expect("frame stack checked non-empty");
                    let span = (f.open_idx, i);
                    match f.kind {
                        FrameKind::Mod(name) => {
                            model.mods.push(ModSpan { name, start: span.0, end: span.1 });
                        }
                        FrameKind::Fn(name) => {
                            model.fns.push(FnSpan { name, start: span.0, end: span.1 });
                        }
                        FrameKind::Other => {}
                    }
                    if f.is_test {
                        model.test_spans.push(span);
                    }
                }
            }
            Tok::Punct('(') | Tok::Punct('[') => grouping += 1,
            Tok::Punct(')') | Tok::Punct(']') => grouping = grouping.saturating_sub(1),
            Tok::Punct(';') => {
                if let Some(d) = &deferred {
                    if grouping <= d.grouping {
                        deferred = None;
                    }
                }
                pending_test_attr = false;
                seen_item = true;
            }
            Tok::Ident(kw) if kw == "mod" && deferred.is_none() => {
                seen_item = true;
                if let Some(name) = tokens.get(i + 1).and_then(|t| t.ident()) {
                    deferred = Some(Deferred {
                        kind: FrameKind::Mod(name.to_string()),
                        is_test: std::mem::take(&mut pending_test_attr),
                        grouping,
                    });
                    i += 2;
                    continue;
                }
            }
            Tok::Ident(kw) if kw == "fn" && deferred.is_none() => {
                seen_item = true;
                // `fn name` is an item (or method); `fn(` is a pointer type.
                if let Some(name) = tokens.get(i + 1).and_then(|t| t.ident()) {
                    deferred = Some(Deferred {
                        kind: FrameKind::Fn(name.to_string()),
                        is_test: std::mem::take(&mut pending_test_attr),
                        grouping,
                    });
                    i += 2;
                    continue;
                }
            }
            Tok::Ident(kw) if kw == "impl" && deferred.is_none() && grouping == 0 => {
                seen_item = true;
                let is_test = std::mem::take(&mut pending_test_attr);
                if let Some(sig) = parse_impl(&tokens, i, is_test) {
                    model.impls.push(sig);
                }
                deferred = Some(Deferred { kind: FrameKind::Other, is_test, grouping });
            }
            Tok::Ident(_) => {
                seen_item = true;
            }
            _ => {}
        }
        i += 1;
    }

    // An impl or lint site recorded before its surrounding test mod closed
    // could not consult `test_spans` yet, so finalize membership now.
    model.tokens = tokens;
    let spans = model.test_spans.clone();
    for site in &mut model.lint_sites {
        if !site.in_test {
            site.in_test =
                spans.iter().any(|&(s, e)| token_line_in_span(&model.tokens, site.line, s, e));
        }
    }
    for imp in &mut model.impls {
        if !imp.in_test {
            imp.in_test =
                spans.iter().any(|&(s, e)| token_line_in_span(&model.tokens, imp.line, s, e));
        }
    }
    model
}

/// Whether any token on `line` falls inside the token-index span `[s, e]`.
fn token_line_in_span(tokens: &[Token], line: u32, s: usize, e: usize) -> bool {
    tokens.get(s).is_some_and(|a| a.line <= line) && tokens.get(e).is_some_and(|b| line <= b.line)
}

/// Parse an attribute starting at `#`; returns the attr and the index just
/// past its closing `]`.
fn parse_attr(tokens: &[Token], at: usize) -> Option<(Attr, usize)> {
    let line = tokens[at].line;
    let mut i = at + 1;
    let inner = tokens.get(i).is_some_and(|t| t.is_punct('!'));
    if inner {
        i += 1;
    }
    if !tokens.get(i).is_some_and(|t| t.is_punct('[')) {
        return None;
    }
    i += 1;
    let start = i;
    let mut brackets = 1usize;
    while i < tokens.len() {
        if tokens[i].is_punct('[') {
            brackets += 1;
        } else if tokens[i].is_punct(']') {
            brackets -= 1;
            if brackets == 0 {
                return Some((Attr { inner, tokens: tokens[start..i].to_vec(), line }, i + 1));
            }
        }
        i += 1;
    }
    None
}

/// Record lint-level attribute sites and root inner attributes.
fn record_attr(model: &mut FileModel, attr: &Attr, open: &[OpenFrame], seen_item: bool) {
    if attr.inner && !seen_item {
        model.root_attrs.push(attr.clone());
    }
    if let Some(action @ ("allow" | "expect" | "deny" | "forbid")) = attr.head() {
        model.lint_sites.push(LintSite {
            action: action.to_string(),
            lints: attr.lint_paths(),
            inner: attr.inner,
            line: attr.line,
            in_test: open.iter().any(|f| f.is_test),
        });
    }
}

/// Parse `impl [<G>] TraitPath for Target ...` at the `impl` keyword.
/// Returns `None` for inherent impls (no `for`). Forwarding impls — on
/// references, `Box`, or a bare generic parameter — yield `target: None`.
fn parse_impl(tokens: &[Token], at: usize, in_test: bool) -> Option<ImplSig> {
    let line = tokens[at].line;
    let mut i = at + 1;
    let mut generics: Vec<String> = Vec::new();

    // Optional generic parameter list.
    if tokens.get(i).is_some_and(|t| t.is_punct('<')) {
        let mut angle = 1usize;
        i += 1;
        let mut expect_param = true;
        while i < tokens.len() && angle > 0 {
            match &tokens[i].tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle -= 1,
                Tok::Punct(',') if angle == 1 => expect_param = true,
                Tok::Punct(':') => expect_param = false,
                Tok::Ident(s) if angle == 1 && expect_param && s != "const" => {
                    generics.push(s.clone());
                    expect_param = false;
                }
                _ => {}
            }
            i += 1;
        }
    }

    // Trait path, up to a top-level `for` (or `{`/`(`, meaning inherent).
    let mut trait_name: Option<String> = None;
    let mut angle = 0usize;
    loop {
        let t = tokens.get(i)?;
        match &t.tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle = angle.saturating_sub(1),
            Tok::Punct('{') => return None,
            Tok::Ident(kw) if kw == "for" && angle == 0 => {
                i += 1;
                break;
            }
            Tok::Ident(s) if angle == 0 => trait_name = Some(s.clone()),
            _ => {}
        }
        i += 1;
    }
    let trait_name = trait_name?;

    // Target type: strip leading `&` / lifetimes / `mut` / `dyn`; a leading
    // `&` or `Box` or a bare generic parameter marks a forwarding impl.
    let mut forwarding = false;
    while let Some(t) = tokens.get(i) {
        match &t.tok {
            Tok::Punct('&') => {
                forwarding = true;
                i += 1;
            }
            Tok::Lifetime => i += 1,
            Tok::Ident(kw) if kw == "mut" || kw == "dyn" => i += 1,
            _ => break,
        }
    }
    let mut target: Option<String> = None;
    let mut angle = 0usize;
    while let Some(t) = tokens.get(i) {
        match &t.tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle = angle.saturating_sub(1),
            Tok::Punct('{') if angle == 0 => break,
            Tok::Ident(kw) if kw == "where" && angle == 0 => break,
            Tok::Ident(s) if angle == 0 => target = Some(s.clone()),
            _ => {}
        }
        i += 1;
    }
    let target = match target {
        Some(name) if name == "Box" || generics.contains(&name) || forwarding => None,
        other => other,
    };
    Some(ImplSig { trait_name, target, line, in_test })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn model(src: &str) -> FileModel {
        outline(lex(src).expect("test source must lex"))
    }

    #[test]
    fn cfg_test_mod_span_is_tracked() {
        let m =
            model("pub fn live() {}\n#[cfg(test)]\nmod tests {\n  fn helper() { let x = 1; }\n}\n");
        let (s, e) = m.mod_span("tests").expect("mod tests tracked");
        assert!(m.in_test(s) && m.in_test(e));
        let live = m.fn_span("live").expect("fn live tracked");
        assert!(!m.in_test(live.0));
    }

    #[test]
    fn nested_mods_and_paths() {
        let m = model("mod outer { mod advisory { fn tick() {} } fn other() {} }");
        let (s, e) = m.mod_span("advisory").expect("nested mod tracked");
        assert!(m.in_mod(s, "outer") && m.in_mod(e, "advisory"));
        let other = m.fn_span("other").expect("fn other tracked");
        assert!(!m.in_mod(other.0, "advisory"));
    }

    #[test]
    fn impls_parse_trait_and_target() {
        let m = model(
            "impl Policy for DeltaLruEdf {}\n\
             impl<P: Policy> Policy for Distribute<P> {}\n\
             impl crate::Footprint for Edf {}\n\
             impl<P: Policy + ?Sized> Policy for &mut P {}\n\
             impl<P: Policy + ?Sized> Policy for Box<P> {}\n\
             impl Dense { fn inherent(&self) {} }\n",
        );
        let sigs: Vec<(String, Option<String>)> =
            m.impls.iter().map(|s| (s.trait_name.clone(), s.target.clone())).collect();
        assert_eq!(
            sigs,
            vec![
                ("Policy".to_string(), Some("DeltaLruEdf".to_string())),
                ("Policy".to_string(), Some("Distribute".to_string())),
                ("Footprint".to_string(), Some("Edf".to_string())),
                ("Policy".to_string(), None),
                ("Policy".to_string(), None),
            ]
        );
    }

    #[test]
    fn impl_inside_test_mod_is_test() {
        let m = model("#[cfg(test)]\nmod tests {\n  struct S;\n  impl Policy for S {}\n}\n");
        assert!(m.impls[0].in_test);
    }

    #[test]
    fn lint_sites_collect_paths() {
        let m = model(
            "#![forbid(unsafe_code)]\n\
             #[allow(clippy::disallowed_methods)]\nfn t() {}\n\
             #[allow(dead_code, clippy::disallowed_types)]\nfn u() {}\n",
        );
        assert_eq!(m.lint_sites.len(), 3);
        assert_eq!(m.lint_sites[0].action, "forbid");
        assert_eq!(m.lint_sites[0].lints, ["unsafe_code"]);
        assert!(m.lint_sites[0].inner);
        assert_eq!(m.lint_sites[1].lints, ["clippy::disallowed_methods"]);
        assert_eq!(m.lint_sites[2].lints, ["dead_code", "clippy::disallowed_types"]);
        assert_eq!(m.root_attrs.len(), 1);
    }

    #[test]
    fn cfg_test_on_fn_and_test_attr() {
        let m = model(
            "#[test]\nfn unit() { body(); }\n\
             #[cfg(test)]\nfn helper() { body(); }\n\
             #[cfg(test)]\nuse std::fmt;\nfn live() { body(); }\n",
        );
        let unit = m.fn_span("unit").expect("unit tracked");
        let helper = m.fn_span("helper").expect("helper tracked");
        let live = m.fn_span("live").expect("live tracked");
        assert!(m.in_test(unit.0));
        assert!(m.in_test(helper.0));
        assert!(!m.in_test(live.0), "cfg(test) on a use must not leak to the next item");
    }

    #[test]
    fn array_semicolon_does_not_cancel_deferral() {
        let m = model("fn f(x: [u8; 4]) { body(); }");
        assert!(m.fn_span("f").is_some());
    }
}

//! One deliberately-bad mini-tree per rule under `tests/fixtures/`, plus a
//! clean tree, each asserting the *exact* fire locations — and a `--json`
//! round-trip of real findings through the hand-rolled parser, both via the
//! library codec and via the actual binary.
//!
//! The fixture sources are data, not code: the workspace walk skips any
//! directory named `fixtures`, so cargo never compiles them and the real
//! lint run never sees them.

use std::path::{Path, PathBuf};

use rrs_lint::{analyze, json, Config, Finding};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures").join(name)
}

fn run(name: &str, rules: Option<&[&str]>) -> Vec<Finding> {
    let config = Config { rules: rules.map(|r| r.iter().map(|s| s.to_string()).collect()) };
    analyze(&fixture_root(name), &config).expect("fixture tree analyzes")
}

/// (file, line, rule, item) — the part of a finding a fixture pins down.
fn anchors(findings: &[Finding]) -> Vec<(String, u32, String, Option<String>)> {
    findings.iter().map(|f| (f.file.clone(), f.line, f.rule.clone(), f.item.clone())).collect()
}

fn anchor(
    file: &str,
    line: u32,
    rule: &str,
    item: Option<&str>,
) -> (String, u32, String, Option<String>) {
    (file.to_string(), line, rule.to_string(), item.map(str::to_string))
}

#[test]
fn waiver_ledger_fires_on_unledgered_allow_and_stale_entry() {
    let findings = run("waiver_bad", None);
    assert_eq!(
        anchors(&findings),
        vec![
            anchor("LINT_LEDGER.toml", 2, "waiver-ledger", Some("unsafe_code")),
            anchor("src/lib.rs", 3, "waiver-ledger", Some("clippy::disallowed_methods")),
        ],
        "{findings:#?}"
    );
    assert!(findings[0].message.contains("stale"), "{}", findings[0].message);
    assert!(findings[1].message.contains("no LINT_LEDGER.toml entry"), "{}", findings[1].message);
}

#[test]
fn float_ban_fires_on_each_float_token_outside_tests() {
    let findings = run("float_bad", Some(&["float-ban"]));
    assert_eq!(
        anchors(&findings),
        vec![
            anchor("crates/core/src/util.rs", 1, "float-ban", Some("f64")),
            anchor("crates/core/src/util.rs", 2, "float-ban", Some("0.5")),
            anchor("crates/core/src/util.rs", 2, "float-ban", Some("f64")),
        ],
        "{findings:#?}"
    );
}

#[test]
fn trait_matrix_fires_once_naming_every_missing_trait() {
    let findings = run("trait_bad", Some(&["trait-matrix"]));
    assert_eq!(
        anchors(&findings),
        vec![anchor("crates/core/src/lib.rs", 11, "trait-matrix", Some("Bad"))],
        "{findings:#?}"
    );
    let msg = &findings[0].message;
    assert!(msg.contains("`Footprint`") && msg.contains("`Instrumented`"), "{msg}");
    assert!(!msg.contains("`Snapshot`"), "Snapshot is implemented: {msg}");
}

#[test]
fn schema_sync_fires_on_writer_parser_and_doc_drift() {
    let findings = run("schema_bad", Some(&["schema-sync"]));
    assert_eq!(
        anchors(&findings),
        vec![
            anchor("crates/engine/src/obs.rs", 3, "schema-sync", Some("undocumented_counter")),
            anchor("crates/engine/src/sink.rs", 3, "schema-sync", Some("orphan")),
            anchor("crates/engine/src/sink.rs", 9, "schema-sync", Some("ghost")),
        ],
        "{findings:#?}"
    );
    assert!(findings[1].message.contains("no `parse_trace_line` arm"), "{}", findings[1].message);
    assert!(findings[2].message.contains("never emits"), "{}", findings[2].message);
}

#[test]
fn unwrap_discipline_fires_outside_tests_only() {
    let findings = run("unwrap_bad", Some(&["unwrap-discipline"]));
    assert_eq!(
        anchors(&findings),
        vec![anchor("src/lib.rs", 4, "unwrap-discipline", None)],
        "{findings:#?}"
    );
}

#[test]
fn crate_root_hygiene_fires_on_missing_forbid_and_unledgered_deny() {
    let findings = run("hygiene_bad", Some(&["crate-root-hygiene"]));
    assert_eq!(
        anchors(&findings),
        vec![
            anchor("crates/denied/src/lib.rs", 1, "crate-root-hygiene", None),
            anchor("src/lib.rs", 1, "crate-root-hygiene", None),
        ],
        "{findings:#?}"
    );
}

#[test]
fn clean_tree_yields_zero_findings_on_a_full_pass() {
    let findings = run("clean", None);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn json_round_trips_real_findings_through_the_hand_rolled_parser() {
    for tree in ["waiver_bad", "schema_bad", "clean"] {
        let findings = run(tree, None);
        let encoded = json::encode(&findings);
        let decoded = json::decode(&encoded).expect("encoder output decodes");
        assert_eq!(decoded, findings, "round-trip identity for {tree}");
    }
}

#[test]
fn binary_json_output_matches_the_library_and_exit_codes_hold() {
    let bin = env!("CARGO_BIN_EXE_rrs-lint");
    for (tree, expect_findings) in [("schema_bad", true), ("clean", false)] {
        let out = std::process::Command::new(bin)
            .args(["--json", "--root"])
            .arg(fixture_root(tree))
            .output()
            .expect("rrs-lint binary runs");
        let code = out.status.code();
        assert_eq!(code, Some(if expect_findings { 1 } else { 0 }), "exit code for {tree}");
        let stdout = String::from_utf8(out.stdout).expect("JSON output is UTF-8");
        let decoded = json::decode(&stdout).expect("binary JSON decodes");
        let library = run(tree, None);
        assert_eq!(decoded, library, "binary and library agree on {tree}");
    }
}

#[test]
fn rule_filter_rejects_unknown_names() {
    let err =
        analyze(&fixture_root("clean"), &Config { rules: Some(vec!["no-such-rule".to_string()]) })
            .unwrap_err();
    assert!(err.contains("unknown rule"), "{err}");
}

#![forbid(unsafe_code)]

#[allow(clippy::disallowed_methods)]
pub fn now_ms() -> u64 {
    0
}

pub mod names {
    pub const ROUNDS: &str = "rounds";
    pub const GHOST: &str = "undocumented_counter";
}

pub fn write_header(out: &mut String) {
    out.push_str("{\"ev\":\"run\",\"v\":1}");
    out.push_str("{\"ev\":\"orphan\"}");
}

pub fn parse_trace_line(line: &str) -> Option<()> {
    match kind(line) {
        "run" => Some(()),
        "ghost" => Some(()),
        _ => None,
    }
}

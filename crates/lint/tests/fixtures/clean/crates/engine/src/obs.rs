pub mod names {
    pub const ROUNDS: &str = "rounds";
}

pub fn write_run(out: &mut String) {
    out.push_str("{\"ev\":\"run\"}");
}

pub fn parse_trace_line(line: &str) -> Option<()> {
    match kind(line) {
        "run" => Some(()),
        _ => None,
    }
}

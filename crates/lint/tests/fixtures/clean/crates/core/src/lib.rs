#![forbid(unsafe_code)]

pub struct Cache;

impl Policy for Cache {}
impl Snapshot for Cache {}
impl Footprint for Cache {}
impl Instrumented for Cache {}

pub fn capacity(n: u64) -> u64 {
    n.checked_mul(2).expect("capacity fits in u64")
}

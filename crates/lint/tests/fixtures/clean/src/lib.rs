#![forbid(unsafe_code)]

#[allow(clippy::disallowed_types)]
pub fn ledgered() -> u64 {
    7
}

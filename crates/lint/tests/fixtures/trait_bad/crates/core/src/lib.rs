#![forbid(unsafe_code)]

pub struct Good;
pub struct Bad;

impl Policy for Good {}
impl Snapshot for Good {}
impl Footprint for Good {}
impl Instrumented for Good {}

impl Policy for Bad {}
impl Snapshot for Bad {}

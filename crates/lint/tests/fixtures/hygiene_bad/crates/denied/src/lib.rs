#![deny(unsafe_code)]

pub fn id(x: u64) -> u64 {
    x
}

pub fn half_of(x: u64) -> f64 {
    (x as f64) * 0.5
}

#[cfg(test)]
mod tests {
    #[test]
    fn floats_are_fine_in_tests() {
        assert!(0.25_f64 < 1.0);
    }
}

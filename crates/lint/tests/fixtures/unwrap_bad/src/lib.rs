#![forbid(unsafe_code)]

pub fn first(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        let v = [1u64];
        assert_eq!(*v.first().unwrap(), 1);
    }
}

//! Feature-gated invariant checkers for the simulator (DESIGN.md §9).
//!
//! This crate is the *specification half* of the engine: where
//! `rrs_engine::sim` implements the paper's four-phase round model as fast
//! as it can, `rrs_check` re-implements it as naively as possible and
//! cross-checks the two on every phase boundary. Nothing here is compiled
//! into default builds — the workspace's `validate` feature installs these
//! checkers at the simulation choke points (golden-fixture tests, the
//! E1–E15 experiment harness, `rrs run`).
//!
//! Two layers:
//!
//! * [`InvariantWatcher`] — a [`rrs_engine::Watcher`] holding an independent
//!   shadow pending model. It machine-checks the phase laws of Section 2:
//!   jobs drop exactly at `arrival + D_ℓ` and never execute at or after it,
//!   each location executes at most one job and only of its configured
//!   color, reconfiguration charges match the recoloring diff, and the
//!   cost/conservation identities hold at the horizon.
//! * [`CheckedPolicy`] — a [`rrs_engine::Policy`] wrapper over the §3
//!   algorithms that checks the [`rrs_core::ColorBook`] timestamp laws
//!   (counter-wrap order, block-boundary commits) after every decision, and
//!   optionally monitors the Lemma 3.3/3.4 bounds incrementally instead of
//!   only post-hoc.
//!
//! All violations panic immediately with round/phase context: a validate
//! run that finishes is a proof the laws held on that input.

#![forbid(unsafe_code)]

pub mod guard;
pub mod watcher;

pub use guard::CheckedPolicy;
pub use watcher::InvariantWatcher;

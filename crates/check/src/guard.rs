//! The lemma-monitoring policy wrapper.
//!
//! [`CheckedPolicy`] wraps any [`Policy`] that exposes its Section 3
//! bookkeeping via [`Instrumented`] and verifies, after every decision,
//! the timestamp laws the ΔLRU recency scheme depends on (§3.1.1):
//!
//! * a committed timestamp is a **counter-wrap round** — a block boundary
//!   of the color (`ts % D_ℓ == 0`) strictly before the current round;
//! * timestamps are **monotone**: a commit never moves a color's
//!   timestamp backwards, so the wrap-order comparison `ts_value` relies
//!   on is a real total order over time;
//! * the counter stays `< Δ` between rounds and an eligible color has
//!   wrapped at least once;
//! * the deadline is the one the current block prescribes
//!   (`⌊k/D_ℓ⌋·D_ℓ + D_ℓ`, or still 0 for a color minted off-boundary).
//!
//! With [`CheckedPolicy::with_lemma_monitors`] it additionally holds the
//! run to the Lemma 3.3/3.4 bounds *incrementally* — after every round,
//! not only post-hoc — which is only sound on the rate-limited inputs the
//! lemmas are stated for, so it is opt-in.

use rrs_core::Instrumented;
use rrs_engine::{recolor_reconfigs, Observation, Policy, Slot};

/// A wrapper policy that delegates every decision to `P` and checks the
/// ColorBook timestamp laws (and optionally the Lemma 3.3/3.4 bounds)
/// after each one. Panics with round context on any violation.
#[derive(Debug)]
pub struct CheckedPolicy<P> {
    inner: P,
    delta: u64,
    /// Last committed timestamp per color, for monotonicity.
    last_ts: Vec<Option<u64>>,
    /// Reconfiguration cost this wrapper has counted from assignment diffs.
    reconfig_cost: u64,
    /// Whether to hold the run to the Lemma 3.3/3.4 bounds each round.
    lemma_monitors: bool,
}

impl<P: Policy + Instrumented> CheckedPolicy<P> {
    /// Wrap a policy with the timestamp-law checks only.
    pub fn new(inner: P) -> Self {
        Self { inner, delta: 0, last_ts: Vec::new(), reconfig_cost: 0, lemma_monitors: false }
    }

    /// Also monitor Lemma 3.3 (`reconfig cost ≤ 4·numEpochs·Δ`) and
    /// Lemma 3.4 (`ineligible drops ≤ numEpochs·Δ`) after every round.
    /// Sound only for ΔLRU-EDF-style runs on rate-limited input.
    pub fn with_lemma_monitors(mut self) -> Self {
        self.lemma_monitors = true;
        self
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Reconfiguration cost counted so far from assignment diffs.
    pub fn counted_reconfig_cost(&self) -> u64 {
        self.reconfig_cost
    }

    fn check_book(&mut self, obs: &Observation<'_>) {
        let Some(book) = self.inner.book() else {
            return;
        };
        if self.last_ts.len() < book.len() {
            self.last_ts.resize(book.len(), None);
        }
        for c in obs.colors.ids() {
            let s = book.state(c);
            let d = s.delay_bound;
            if d == 0 {
                // The book materializes a color's state on first arrival;
                // until then it reads as the untouched sentinel, which must
                // be inert in every ranking.
                assert!(
                    s.ts.is_none() && s.cnt == 0 && !s.eligible && s.deadline == 0,
                    "round {}: never-arrived color {c} has live state",
                    obs.round
                );
                continue;
            }
            if let Some(w) = s.ts {
                assert!(
                    w % d == 0 && w < obs.round,
                    "round {}: color {c} committed timestamp {w} is not a wrap round \
                     strictly before the current block (D={d})",
                    obs.round
                );
            }
            let prev = self.last_ts[c.index()];
            assert!(
                s.ts >= prev,
                "round {}: color {c} timestamp moved backwards ({prev:?} -> {:?}), \
                 breaking counter-wrap order",
                obs.round,
                s.ts
            );
            self.last_ts[c.index()] = s.ts;
            assert!(
                s.cnt < self.delta,
                "round {}: color {c} counter {} escaped its wrap bound Δ={}",
                obs.round,
                s.cnt,
                self.delta
            );
            assert!(
                !s.eligible || s.last_wrap.is_some(),
                "round {}: color {c} is eligible but never wrapped",
                obs.round
            );
            let block_deadline = (obs.round / d) * d + d;
            assert!(
                s.deadline == 0 || s.deadline == block_deadline,
                "round {}: color {c} deadline {} is neither unset nor the block's {}",
                obs.round,
                s.deadline,
                block_deadline
            );
        }
    }

    fn check_lemmas(&self, round: u64) {
        let m = self.inner.metrics();
        let epochs = m.num_epochs();
        assert!(
            self.reconfig_cost <= 4 * epochs * self.delta,
            "round {round}: Lemma 3.3 violated incrementally: reconfig cost {} > 4·{epochs}·{}",
            self.reconfig_cost,
            self.delta
        );
        assert!(
            m.ineligible_drops <= epochs * self.delta,
            "round {round}: Lemma 3.4 violated incrementally: ineligible drops {} > {epochs}·{}",
            m.ineligible_drops,
            self.delta
        );
    }
}

impl<P: Instrumented> Instrumented for CheckedPolicy<P> {
    fn book(&self) -> Option<&rrs_core::ColorBook> {
        // The supervisor keeps no bookkeeping of its own; the wrapped
        // policy's book is the §3 state under scrutiny.
        self.inner.book()
    }

    fn metrics(&self) -> rrs_core::AlgoMetrics {
        self.inner.metrics()
    }
}

impl<P: rrs_core::Footprint> rrs_core::Footprint for CheckedPolicy<P> {
    fn footprint(&self) -> rrs_core::StateFootprint {
        // `last_ts` is a dense Vec, not a sparse container, so the wrapper
        // contributes nothing beyond the wrapped policy's report.
        self.inner.footprint()
    }
}

impl<P: Policy + Instrumented> Policy for CheckedPolicy<P> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn init(&mut self, delta: u64, n_locations: usize) {
        self.delta = delta;
        self.last_ts.clear();
        self.reconfig_cost = 0;
        self.inner.init(delta, n_locations);
    }

    fn reconfigure(&mut self, obs: &Observation<'_>, out: &mut Vec<Slot>) {
        self.inner.reconfigure(obs, out);
        assert_eq!(
            out.len(),
            obs.slots.len(),
            "round {}: policy changed the number of locations",
            obs.round
        );
        self.reconfig_cost += obs.delta * recolor_reconfigs(obs.slots, out);
        self.check_book(obs);
        if self.lemma_monitors {
            self.check_lemmas(obs.round);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_core::{ClassicLru, DeltaLru, DeltaLruEdf, Edf};
    use rrs_engine::Simulator;
    use rrs_model::InstanceBuilder;
    use rrs_workloads::{rate_limited_instance, RateLimitedConfig};

    #[test]
    fn checked_run_matches_bare_run() {
        let inst = rate_limited_instance(&RateLimitedConfig::default(), 7);
        let bare = Simulator::new(&inst, 8).run(&mut DeltaLruEdf::new());
        let mut checked = CheckedPolicy::new(DeltaLruEdf::new()).with_lemma_monitors();
        let watched = Simulator::new(&inst, 8).run(&mut checked);
        assert_eq!(bare, watched);
        assert_eq!(checked.counted_reconfig_cost(), watched.cost.reconfig_cost());
    }

    #[test]
    fn timestamp_laws_hold_across_policies_and_seeds() {
        let cfg = RateLimitedConfig { delta: 3, ..Default::default() };
        for seed in 0..10 {
            let inst = rate_limited_instance(&cfg, seed);
            Simulator::new(&inst, 8)
                .run(&mut CheckedPolicy::new(DeltaLruEdf::new()).with_lemma_monitors());
            Simulator::new(&inst, 8).run(&mut CheckedPolicy::new(DeltaLru::new()));
            Simulator::new(&inst, 8).run(&mut CheckedPolicy::new(Edf::new()));
            Simulator::new(&inst, 8).run(&mut CheckedPolicy::new(ClassicLru::new()));
        }
    }

    #[test]
    fn bookless_policy_is_accepted() {
        let mut b = InstanceBuilder::new(2);
        let c = b.color(2);
        b.arrive(0, c, 2).arrive(2, c, 2);
        let inst = b.build();
        let out = Simulator::new(&inst, 2).run(&mut CheckedPolicy::new(ClassicLru::new()));
        assert!(out.conserved());
    }

    #[test]
    fn name_is_transparent() {
        assert_eq!(CheckedPolicy::new(DeltaLruEdf::new()).name(), "dlru-edf");
    }
}

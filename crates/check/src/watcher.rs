//! The shadow-model invariant watcher.
//!
//! [`InvariantWatcher`] maintains its own pending-job model — one
//! `BTreeMap<deadline, count>` per color, fed straight from the instance —
//! and falsifies the engine's optimized state against it at every phase
//! boundary. The shadow is deliberately naive: no queues, no `min_due`
//! fast path, no dense scratch — so a bug in the engine's hot loop and a
//! bug in the checker are unlikely to coincide.

use std::collections::BTreeMap;

use rrs_engine::{EngineState, Outcome, PendingStore, Slot, Watcher};
use rrs_model::{ColorId, ColorMap, ColorSet, Instance};

/// Which simulation phase a violation was detected in, for error context.
#[derive(Clone, Copy, Debug)]
enum CheckPhase {
    Drop,
    Arrival,
    Reconfig,
    Execute,
    End,
}

/// A [`Watcher`] that machine-checks the paper's phase laws (Section 2)
/// against an independent shadow model of the pending jobs.
///
/// Checked every round:
///
/// * **Drop law** — the drop phase of round `k` removes exactly the jobs
///   with deadline `arrival + D_ℓ = k`, reported per color in consistent
///   order, and the store's full deadline profile matches the shadow.
/// * **Arrival law** — round `k` arrivals are the instance's request for
///   `k`, inserted with deadline `k + D_ℓ`.
/// * **Reconfiguration law** — the charge equals the number of locations
///   recolored to a non-black color (Δ each; parking is free).
/// * **Execution law** — per mini-round, each color executes at most once,
///   at most its replica count in the current assignment, removing
///   earliest-deadline jobs whose deadlines are strictly in the future.
/// * **Accounting** — at the end, the outcome's arrival/execution/drop
///   totals and the `Δ·reconfigs + drops` cost identity match the
///   watcher's own counts, and every unresolved shadow job has a deadline
///   beyond the simulated horizon.
///
/// Any violation panics immediately with round and phase context.
#[derive(Debug)]
pub struct InvariantWatcher<'a> {
    inst: &'a Instance,
    delta: u64,
    n_locations: usize,
    horizon: u64,
    /// Shadow pending jobs: per color, deadline → count. Paged, so a
    /// huge mostly-idle color universe costs memory only for colors that
    /// actually hold jobs; the store cross-check closes the gap for
    /// untouched colors through the total-count comparison.
    shadow: ColorMap<BTreeMap<u64, u64>>,
    /// Colors already executed in the current mini-round.
    exec_seen: ColorSet,
    arrived: u64,
    executed: u64,
    dropped: u64,
    reconfigs: u64,
    began: bool,
}

impl<'a> InvariantWatcher<'a> {
    /// A watcher for runs over `inst`. The same instance must be the one
    /// driving the simulator; the watcher cross-checks arrivals against it.
    pub fn new(inst: &'a Instance) -> Self {
        let n = inst.colors.len();
        let mut shadow = ColorMap::new();
        shadow.grow_to(n);
        Self {
            inst,
            delta: inst.delta,
            n_locations: 0,
            horizon: 0,
            shadow,
            exec_seen: ColorSet::new(),
            arrived: 0,
            executed: 0,
            dropped: 0,
            reconfigs: 0,
            began: false,
        }
    }

    /// A watcher for a run resumed from a checkpoint of `inst`. The shadow
    /// is seeded from the snapshot's pending profile and cost counters, so
    /// the phase laws and end-of-run accounting hold across the stitch
    /// exactly as they would for the uninterrupted run.
    pub fn resume_from(inst: &'a Instance, state: &EngineState) -> Self {
        let mut w = Self::new(inst);
        let n = inst.colors.len().max(state.pending.num_colors());
        w.shadow.grow_to(n);
        for i in 0..state.pending.num_colors() {
            let c = ColorId(i as u32);
            let mut profile = state.pending.profile(c).peekable();
            if profile.peek().is_some() {
                w.shadow.entry(c).extend(profile);
            }
        }
        w.arrived = state.arrived;
        w.executed = state.executed;
        w.dropped = state.dropped;
        w.reconfigs = state.ledger.reconfigs;
        w
    }

    /// Jobs checked in: total arrivals observed so far.
    pub fn arrived(&self) -> u64 {
        self.arrived
    }

    /// Jobs still unresolved in the shadow model.
    pub fn shadow_pending(&self) -> u64 {
        self.shadow.iter().flat_map(|(_, m)| m.values()).sum()
    }

    #[track_caller]
    fn fail(&self, phase: CheckPhase, round: u64, msg: &str) -> ! {
        panic!(
            "invariant violation [{phase:?} phase, round {round}]: {msg} \
             (Δ={}, n={}, horizon={})",
            self.delta, self.n_locations, self.horizon
        );
    }

    /// Full cross-check of the engine store against the shadow: per-color
    /// totals, earliest deadlines, and (when `deep`) the whole profile.
    /// Only colors on live shadow pages are compared individually; a
    /// pending job the store invented for any *other* color still trips
    /// the final total comparison, since per-color matches pin every
    /// live color's contribution.
    fn check_store(&self, phase: CheckPhase, round: u64, pending: &PendingStore, deep: bool) {
        let mut total = 0u64;
        for (c, m) in self.shadow.iter() {
            let want: u64 = m.values().sum();
            total += want;
            if pending.count(c) != want {
                self.fail(
                    phase,
                    round,
                    &format!("color {c}: store holds {} pending, shadow {want}", pending.count(c)),
                );
            }
            let first = m.keys().next().copied();
            if pending.earliest_deadline(c) != first {
                self.fail(
                    phase,
                    round,
                    &format!(
                        "color {c}: earliest deadline {:?} != shadow {first:?}",
                        pending.earliest_deadline(c)
                    ),
                );
            }
            if deep {
                let got: Vec<(u64, u64)> = pending.profile(c).collect();
                let want: Vec<(u64, u64)> = m.iter().map(|(&d, &n)| (d, n)).collect();
                if got != want {
                    self.fail(
                        phase,
                        round,
                        &format!("color {c}: deadline profile {got:?} != shadow {want:?}"),
                    );
                }
            }
        }
        if pending.total() != total {
            self.fail(
                phase,
                round,
                &format!("store total {} != shadow total {total}", pending.total()),
            );
        }
    }
}

impl Watcher for InvariantWatcher<'_> {
    fn begin_run(&mut self, delta: u64, n_locations: usize, speed: u32, horizon: u64) {
        assert_eq!(
            delta, self.inst.delta,
            "watcher instance has Δ={} but the simulator runs Δ={delta}",
            self.inst.delta
        );
        assert!(speed >= 1, "speed must be at least 1");
        self.n_locations = n_locations;
        self.horizon = horizon;
        self.began = true;
    }

    fn after_drop(&mut self, round: u64, dropped: &[(ColorId, u64)], pending: &PendingStore) {
        // Shadow drop phase: remove every job with deadline <= round (== in
        // in-order use) and compare the per-color summary, which the engine
        // reports in ascending color order with zero entries omitted.
        let mut want: Vec<(ColorId, u64)> = Vec::new();
        for (c, m) in self.shadow.iter_mut() {
            let mut n = 0;
            while let Some((&d, &k)) = m.iter().next() {
                if d > round {
                    break;
                }
                n += k;
                m.remove(&d);
            }
            if n > 0 {
                want.push((c, n));
            }
        }
        if dropped != want {
            self.fail(
                CheckPhase::Drop,
                round,
                &format!("engine dropped {dropped:?}, shadow expects {want:?}"),
            );
        }
        self.dropped += want.iter().map(|&(_, n)| n).sum::<u64>();
        self.check_store(CheckPhase::Drop, round, pending, true);
    }

    fn after_arrivals(&mut self, round: u64, arrivals: &[(ColorId, u64)], pending: &PendingStore) {
        // The arrivals must be the instance's request for this round, and
        // each job's shadow deadline is arrival + D_ℓ.
        let expected = self.inst.requests.at(round).pairs();
        if arrivals != expected {
            self.fail(
                CheckPhase::Arrival,
                round,
                &format!("engine fed arrivals {arrivals:?}, instance says {expected:?}"),
            );
        }
        for &(c, n) in arrivals {
            if n == 0 {
                continue;
            }
            let Some(d) = self.inst.colors.try_delay_bound(c) else {
                self.fail(CheckPhase::Arrival, round, &format!("arrival of unknown color {c}"));
            };
            *self.shadow.entry(c).entry(round + d).or_insert(0) += n;
            self.arrived += n;
        }
        self.check_store(CheckPhase::Arrival, round, pending, false);
    }

    fn after_reconfig(&mut self, round: u64, mini: u32, old: &[Slot], new: &[Slot], charged: u64) {
        if old.len() != self.n_locations || new.len() != self.n_locations {
            self.fail(
                CheckPhase::Reconfig,
                round,
                &format!(
                    "assignment length drifted: old {}, new {}, expected {}",
                    old.len(),
                    new.len(),
                    self.n_locations
                ),
            );
        }
        // Pricing rule: Δ per location recolored to a non-black color;
        // parking (recoloring to black) is free.
        let want = old.iter().zip(new).filter(|(o, n)| o != n && n.is_some()).count() as u64;
        if charged != want {
            self.fail(
                CheckPhase::Reconfig,
                round,
                &format!("mini {mini}: engine charged {charged} reconfigs, recolor diff is {want}"),
            );
        }
        self.reconfigs += charged;
        self.exec_seen.clear();
    }

    fn on_execute(&mut self, round: u64, mini: u32, color: ColorId, count: u64, slots: &[Slot]) {
        if count == 0 {
            return;
        }
        if !self.exec_seen.insert(color) {
            self.fail(
                CheckPhase::Execute,
                round,
                &format!("mini {mini}: color {color} executed twice in one mini-round"),
            );
        }
        let replicas = slots.iter().filter(|&&s| s == Some(color)).count() as u64;
        if count > replicas {
            self.fail(
                CheckPhase::Execute,
                round,
                &format!(
                    "mini {mini}: {count} jobs of color {color} executed on {replicas} \
                     configured locations"
                ),
            );
        }
        // Remove earliest-deadline jobs from the shadow; every executed job
        // must still be alive (deadline strictly after this round's drop
        // phase — a deadline-k job was dropped in round k, never executed).
        let m = self.shadow.entry(color);
        let mut left = count;
        while left > 0 {
            let Some((&d, &n)) = m.iter().next() else {
                self.fail(
                    CheckPhase::Execute,
                    round,
                    &format!("mini {mini}: color {color} executed {count} with too few pending"),
                );
            };
            if d <= round {
                self.fail(
                    CheckPhase::Execute,
                    round,
                    &format!("mini {mini}: color {color} executed a job past its deadline {d}"),
                );
            }
            let take = n.min(left);
            left -= take;
            if take == n {
                m.remove(&d);
            } else {
                m.insert(d, n - take);
            }
        }
        self.executed += count;
    }

    fn after_execution(&mut self, round: u64, _mini: u32, pending: &PendingStore) {
        self.check_store(CheckPhase::Execute, round, pending, false);
    }

    fn end_run(&mut self, outcome: &Outcome) {
        assert!(self.began, "end_run without begin_run");
        let f = |msg: String| -> ! { self.fail(CheckPhase::End, outcome.rounds, &msg) };
        if outcome.arrived != self.arrived {
            f(format!("outcome.arrived {} != watched {}", outcome.arrived, self.arrived));
        }
        if outcome.executed != self.executed {
            f(format!("outcome.executed {} != watched {}", outcome.executed, self.executed));
        }
        if outcome.dropped != self.dropped || outcome.cost.drops != self.dropped {
            f(format!(
                "drop accounting: outcome {} / ledger {} != watched {}",
                outcome.dropped, outcome.cost.drops, self.dropped
            ));
        }
        if outcome.cost.reconfigs != self.reconfigs {
            f(format!(
                "reconfig accounting: ledger {} != watched {}",
                outcome.cost.reconfigs, self.reconfigs
            ));
        }
        if outcome.cost.delta != self.delta {
            f(format!("ledger Δ {} != instance Δ {}", outcome.cost.delta, self.delta));
        }
        if outcome.total_cost() != self.delta * self.reconfigs + self.dropped {
            f(format!(
                "total cost {} != Δ·reconfigs + drops = {}",
                outcome.total_cost(),
                self.delta * self.reconfigs + self.dropped
            ));
        }
        if outcome.final_slots.len() != self.n_locations {
            f(format!(
                "final assignment has {} locations, expected {}",
                outcome.final_slots.len(),
                self.n_locations
            ));
        }
        // Conservation: arrived = executed + dropped + still-pending, and a
        // job may outlive the run only if its deadline lies beyond the
        // simulated rounds (custom truncated horizons).
        let remaining = self.shadow_pending();
        if self.arrived != self.executed + self.dropped + remaining {
            f(format!(
                "conservation: arrived {} != executed {} + dropped {} + pending {remaining}",
                self.arrived, self.executed, self.dropped
            ));
        }
        for (c, m) in self.shadow.iter() {
            if let Some((&d, _)) = m.iter().next() {
                if d < outcome.rounds {
                    f(format!(
                        "color {c} still holds a job due at {d} after {} simulated rounds",
                        outcome.rounds
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_core::{full_algorithm, DeltaLruEdf};
    use rrs_engine::policy::{DoNothing, PinColor};
    use rrs_engine::{NullRecorder, Scratch, Simulator};
    use rrs_model::InstanceBuilder;

    fn watch<P: rrs_engine::Policy>(inst: &Instance, n: usize, policy: &mut P) -> Outcome {
        let mut w = InvariantWatcher::new(inst);
        let out = Simulator::new(inst, n).run_watched(
            policy,
            &mut NullRecorder,
            &mut Scratch::new(),
            &mut w,
        );
        assert_eq!(w.arrived(), inst.total_jobs());
        assert_eq!(w.shadow_pending(), 0);
        out
    }

    #[test]
    fn clean_runs_pass_all_checks() {
        let mut b = InstanceBuilder::new(2);
        let c0 = b.color(2);
        let c1 = b.color(8);
        for blk in 0..6 {
            b.arrive(blk * 2, c0, 2);
        }
        b.arrive(0, c1, 8).arrive(8, c1, 4);
        let inst = b.build();
        let out = watch(&inst, 8, &mut DeltaLruEdf::new());
        assert!(out.conserved());
        let out = watch(&inst, 8, &mut full_algorithm());
        assert!(out.conserved());
        let out = watch(&inst, 2, &mut PinColor(c0));
        assert!(out.conserved());
    }

    #[test]
    fn do_nothing_drops_everything_and_passes() {
        let mut b = InstanceBuilder::new(3);
        let c = b.color(4);
        b.arrive(0, c, 5).arrive(4, c, 1);
        let inst = b.build();
        let out = watch(&inst, 4, &mut DoNothing);
        assert_eq!(out.dropped, 6);
        assert_eq!(out.total_cost(), 6);
    }

    #[test]
    fn speed_two_schedules_pass() {
        let mut b = InstanceBuilder::new(2);
        let c = b.color(4);
        b.arrive(0, c, 3).arrive(4, c, 3);
        let inst = b.build();
        let mut w = InvariantWatcher::new(&inst);
        let out = Simulator::new(&inst, 1).with_speed(2).run_watched(
            &mut PinColor(c),
            &mut NullRecorder,
            &mut Scratch::new(),
            &mut w,
        );
        assert!(out.conserved());
        assert_eq!(w.shadow_pending(), 0);
    }

    #[test]
    fn extended_horizon_runs_idle_tail_cleanly() {
        let mut b = InstanceBuilder::new(1);
        let c = b.color(8);
        b.arrive(0, c, 2);
        let inst = b.build();
        let mut w = InvariantWatcher::new(&inst);
        // `with_horizon` can only extend past the instance horizon; the
        // extra idle rounds must not confuse any phase check.
        let out = Simulator::new(&inst, 0).with_horizon(20).run_watched(
            &mut DoNothing,
            &mut NullRecorder,
            &mut Scratch::new(),
            &mut w,
        );
        assert!(out.conserved());
        assert_eq!(out.rounds, 21);
        assert_eq!(w.shadow_pending(), 0);
    }

    #[test]
    fn resumed_runs_satisfy_the_watcher() {
        // Checkpoint mid-run, then resume with a shadow seeded from the
        // snapshot: both halves pass every phase check and the stitched
        // outcome matches the uninterrupted watched run.
        let mut b = InstanceBuilder::new(2);
        let c0 = b.color(2);
        let c1 = b.color(8);
        for blk in 0..6 {
            b.arrive(blk * 2, c0, 2);
        }
        b.arrive(0, c1, 8).arrive(8, c1, 4);
        let inst = b.build();
        let full = watch(&inst, 8, &mut full_algorithm());

        for k in [1, 4, 9] {
            let mut w = InvariantWatcher::new(&inst);
            let snap = Simulator::new(&inst, 8)
                .checkpoint(
                    &mut full_algorithm(),
                    &mut NullRecorder,
                    &mut Scratch::new(),
                    &mut w,
                    k,
                )
                .into_snapshot();
            let file = rrs_engine::SnapshotFile::parse(&snap).unwrap();
            let mut w2 = InvariantWatcher::resume_from(&inst, &file.state);
            let out = Simulator::new(&inst, 8)
                .resume(
                    &mut full_algorithm(),
                    &mut NullRecorder,
                    &mut Scratch::new(),
                    &mut w2,
                    &snap,
                )
                .unwrap();
            assert_eq!(out, full, "resume at round {k} diverged");
            assert_eq!(w2.arrived(), inst.total_jobs());
            assert_eq!(w2.shadow_pending(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "invariant violation")]
    fn mismatched_instance_is_caught() {
        // Watch a run with a shadow built from a *different* instance: the
        // arrival law must fire.
        let mut b = InstanceBuilder::new(2);
        let c = b.color(4);
        b.arrive(0, c, 2);
        let run_inst = b.build();
        b.arrive(4, c, 1);
        let other = b.build();
        let mut w = InvariantWatcher::new(&other);
        Simulator::new(&run_inst, 1).with_horizon(other.horizon()).run_watched(
            &mut PinColor(c),
            &mut NullRecorder,
            &mut Scratch::new(),
            &mut w,
        );
    }

    #[test]
    #[should_panic(expected = "watcher instance has")]
    fn mismatched_delta_is_caught() {
        let mut b = InstanceBuilder::new(2);
        let c = b.color(4);
        b.arrive(0, c, 1);
        let inst = b.build();
        let mut b2 = InstanceBuilder::new(3);
        let c2 = b2.color(4);
        b2.arrive(0, c2, 1);
        let other = b2.build();
        let mut w = InvariantWatcher::new(&other);
        Simulator::new(&inst, 1).run_watched(
            &mut PinColor(c),
            &mut NullRecorder,
            &mut Scratch::new(),
            &mut w,
        );
    }
}

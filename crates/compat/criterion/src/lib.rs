//! Offline stand-in for the `criterion` crate, so `cargo bench` works with
//! no registry access.
//!
//! Implements the API subset the workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `throughput`, `bench_function`,
//! `finish`), [`Bencher::iter`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a plain
//! wall-clock protocol: warm up, auto-calibrate an iteration batch to
//! ~`MIN_SAMPLE_TIME`, time `sample_size` batches, report the median (and
//! min/max) per-iteration time plus derived throughput.
//!
//! Harness behavior matches real criterion where cargo depends on it:
//! `--test` runs every benchmark body once and exits, `--list` prints the
//! benchmark names, and a positional argument filters benchmarks by
//! substring.

#![forbid(unsafe_code)]
// Audited exception to the determinism wall (clippy.toml): a bench
// harness's entire job is reading the wall clock.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How the harness was invoked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Full measurement (`cargo bench`).
    Bench,
    /// Run each body once (`cargo test` / `--test`).
    Test,
    /// Print names only (`--list`).
    List,
}

/// The benchmark harness entry point.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { mode: Mode::Bench, filter: None, default_sample_size: 20 }
    }
}

/// Minimum time one measured sample should take, so timer resolution noise
/// stays below ~1%.
const MIN_SAMPLE_TIME: Duration = Duration::from_millis(5);

impl Criterion {
    /// Build a harness from the process arguments (the contract cargo's
    /// `harness = false` bench targets get).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.mode = Mode::Test,
                "--list" => c.mode = Mode::List,
                s if s.starts_with('-') => {} // ignore --bench, --nocapture, ...
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Benchmark a function under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_one(self.mode, self.selected(id), id, sample_size, None, f);
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 20, throughput: None }
    }
}

/// A group of related benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a function within this group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(
            self.criterion.mode,
            self.criterion.selected(&full),
            &full,
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// End the group (accepted for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    mode: Mode,
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, running it repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.mode == Mode::Test {
            black_box(routine());
            return;
        }
        // Calibrate: grow the batch until one batch clears MIN_SAMPLE_TIME.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_SAMPLE_TIME || iters >= 1 << 20 {
                break;
            }
            iters = iters
                .saturating_mul(2)
                .max(
                    (iters as f64 * MIN_SAMPLE_TIME.as_secs_f64() / elapsed.as_secs_f64().max(1e-9))
                        as u64,
                )
                .min(1 << 20);
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} \u{b5}s", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

fn run_one<F>(
    mode: Mode,
    selected: bool,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    match mode {
        Mode::List => {
            println!("{id}: benchmark");
            return;
        }
        _ if !selected => return,
        Mode::Test => {
            let mut b = Bencher { mode, iters_per_sample: 1, samples: Vec::new(), sample_size };
            f(&mut b);
            println!("test {id} ... ok");
            return;
        }
        Mode::Bench => {}
    }
    let mut b = Bencher { mode, iters_per_sample: 1, samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id}: no measurement (closure never called iter)");
        return;
    }
    let mut per_iter: Vec<f64> =
        b.samples.iter().map(|s| s.as_secs_f64() / b.iters_per_sample as f64).collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    let fmt = |secs: f64| fmt_duration(Duration::from_secs_f64(secs));
    let mut line = format!("{id:<50} time: [{} {} {}]", fmt(lo), fmt(median), fmt(hi));
    match throughput {
        Some(Throughput::Elements(n)) => {
            line.push_str(&format!("  thrpt: {}", fmt_rate(n as f64 / median, "elem")));
        }
        Some(Throughput::Bytes(n)) => {
            line.push_str(&format!("  thrpt: {}", fmt_rate(n as f64 / median, "B")));
        }
        None => {}
    }
    println!("{line}");
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        g.bench_function("counting", |b| b.iter(|| ran = black_box(ran.wrapping_add(1))));
        g.finish();
        assert!(ran > 0, "routine must actually run");
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { mode: Mode::Test, ..Criterion::default() };
        let mut ran = 0u64;
        c.bench_function("once", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }

    #[test]
    fn filter_skips_unmatched() {
        let mut c = Criterion { filter: Some("nomatch".into()), ..Criterion::default() };
        let mut ran = false;
        c.bench_function("something_else", |b| b.iter(|| ran = true));
        assert!(!ran);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500.0 ns");
        assert!(fmt_duration(Duration::from_micros(1500)).ends_with("ms"));
        assert!(fmt_rate(2.5e6, "elem").starts_with("2.500 M"));
    }
}

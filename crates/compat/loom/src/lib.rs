//! Offline stand-in for the `loom` crate, so the workspace's concurrency
//! model tests run with no registry access.
//!
//! Real loom exhaustively enumerates interleavings under the C11 memory
//! model. This shim is a *randomized* model checker in the style of
//! shuttle: [`model`] re-runs the test body under many seeded
//! pseudo-random schedules, and a cooperative scheduler permits exactly
//! one model thread to run at a time, context-switching at every
//! instrumented operation (atomic access, spawn, join). That explores a
//! large sample of interleavings — including ones a free-running `std`
//! test would essentially never hit — while staying dependency-free and
//! fully deterministic for a fixed seed set.
//!
//! The schedule count comes from `LOOM_SCHEDULES` (default
//! [`DEFAULT_SCHEDULES`]). Every operation a model exercises must go
//! through the `loom::` types ([`sync::atomic::AtomicUsize`],
//! [`thread::spawn`], …), exactly as with real loom; plain `std` atomics
//! would be invisible to the scheduler. Outside [`model`] the shim types
//! degrade to their `std` counterparts, so helper code is reusable.
//!
//! Guarantees the shim keeps from real loom:
//!
//! * a panic on any model thread fails the test (it is re-raised from
//!   [`model`], with sibling threads cut loose rather than joined);
//! * a schedule where every live thread is blocked panics with a
//!   "deadlock" diagnostic instead of hanging;
//! * for a fixed `LOOM_SCHEDULES` the explored schedule set is identical
//!   across runs — failures reproduce.

#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Schedules explored per [`model`] call when `LOOM_SCHEDULES` is unset.
pub const DEFAULT_SCHEDULES: u64 = 64;

/// xorshift64* — tiny, seedable, deterministic schedule randomness.
#[derive(Clone)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        // Avoid the all-zeros fixed point; mix the seed a little.
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThreadState {
    /// Eligible to be scheduled.
    Runnable,
    /// Waiting for another thread to finish (see [`JoinHandle::join`]).
    BlockedOnJoin(usize),
    /// Returned (or unwound). Terminal.
    Finished,
}

struct SchedState {
    /// Thread currently allowed to run.
    current: usize,
    states: Vec<ThreadState>,
    /// Whether the thread unwound rather than returned.
    panicked: Vec<bool>,
    rng: Rng,
}

/// The cooperative scheduler: exactly one registered thread runs between
/// context-switch points; everyone else parks on the condvar.
struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
}

/// Panic payloads don't implement `Debug`; locking must therefore survive
/// poisoning or every schedule after a detected bug would die on
/// `PoisonError` instead of the real diagnostic.
fn lock(m: &Mutex<SchedState>) -> MutexGuard<'_, SchedState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Scheduler {
    fn new(seed: u64) -> Arc<Self> {
        Arc::new(Scheduler {
            state: Mutex::new(SchedState {
                current: 0,
                states: vec![ThreadState::Runnable],
                panicked: vec![false],
                rng: Rng::new(seed),
            }),
            cv: Condvar::new(),
        })
    }

    /// Register a new model thread; returns its id.
    fn register(&self) -> usize {
        let mut st = lock(&self.state);
        st.states.push(ThreadState::Runnable);
        st.panicked.push(false);
        st.states.len() - 1
    }

    /// Pick a runnable thread at random and make it current. Wakes join
    /// waiters first so they are candidates. Panics on deadlock.
    fn pick_next(&self, st: &mut SchedState) {
        // Unblock joins on finished threads.
        for i in 0..st.states.len() {
            if let ThreadState::BlockedOnJoin(t) = st.states[i] {
                if st.states[t] == ThreadState::Finished {
                    st.states[i] = ThreadState::Runnable;
                }
            }
        }
        let runnable: Vec<usize> =
            (0..st.states.len()).filter(|&i| st.states[i] == ThreadState::Runnable).collect();
        if runnable.is_empty() {
            if st.states.iter().all(|&s| s == ThreadState::Finished) {
                // Schedule complete: wake `wait_all_finished` on the
                // harness thread.
                self.cv.notify_all();
                return;
            }
            panic!("loom (shim): deadlock — no runnable thread (states: {:?})", st.states);
        }
        let choice = st.rng.below(runnable.len());
        st.current = runnable[choice];
        self.cv.notify_all();
    }

    /// A context-switch point for thread `me`: hand the token to a random
    /// runnable thread (possibly `me` again) and wait for our turn.
    fn switch(&self, me: usize) {
        let mut st = lock(&self.state);
        self.pick_next(&mut st);
        while st.current != me {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Block `me` until `target` finishes, scheduling others meanwhile.
    fn join_wait(&self, me: usize, target: usize) {
        let mut st = lock(&self.state);
        if st.states[target] != ThreadState::Finished {
            st.states[me] = ThreadState::BlockedOnJoin(target);
        }
        self.pick_next(&mut st);
        while st.current != me {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        debug_assert_eq!(st.states[target], ThreadState::Finished);
    }

    /// Mark `me` finished and pass the token on.
    fn retire(&self, me: usize, panicked: bool) {
        let mut st = lock(&self.state);
        st.states[me] = ThreadState::Finished;
        st.panicked[me] = panicked;
        self.pick_next(&mut st);
    }

    /// Wait (from outside the model, on the real harness thread) until the
    /// root model thread and everything it spawned have finished.
    fn wait_all_finished(&self) -> bool {
        let mut st = lock(&self.state);
        while !st.states.iter().all(|&s| s == ThreadState::Finished) {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.panicked.iter().any(|&p| p)
    }
}

thread_local! {
    /// The ambient (scheduler, thread-id) pair, set while a model thread
    /// runs. `None` means "not under `model`": shim types pass straight
    /// through to `std`.
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

fn with_ctx<R>(f: impl FnOnce(Option<&(Arc<Scheduler>, usize)>) -> R) -> R {
    CTX.with(|c| f(c.borrow().as_ref()))
}

/// Context-switch point used by every instrumented operation.
fn switch_point() {
    with_ctx(|ctx| {
        if let Some((sched, me)) = ctx {
            sched.switch(*me);
        }
    });
}

/// Run `f` under many seeded schedules (see the crate docs). Panics if any
/// schedule panicked, re-raising the first schedule's payload.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let schedules = std::env::var("LOOM_SCHEDULES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(DEFAULT_SCHEDULES);
    let f = Arc::new(f);
    for seed in 0..schedules {
        let sched = Scheduler::new(seed);
        let root = Arc::clone(&sched);
        let body = Arc::clone(&f);
        // The root model thread is id 0 (registered in `new`). It runs on
        // its own OS thread so the harness thread can supervise.
        let handle = std::thread::spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&root), 0)));
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body()));
            let panicked = result.is_err();
            root.retire(0, panicked);
            CTX.with(|c| *c.borrow_mut() = None);
            result
        });
        let any_panicked = sched.wait_all_finished();
        let root_result = handle.join().expect("root model thread itself must not die");
        if let Err(payload) = root_result {
            std::panic::resume_unwind(payload);
        }
        if any_panicked {
            panic!("loom (shim): a spawned model thread panicked under seed {seed}");
        }
    }
}

pub mod thread {
    //! Model-aware `std::thread` subset.

    use super::{switch_point, with_ctx, Arc, Scheduler, CTX};

    /// Handle to a spawned model thread.
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<std::thread::Result<T>>,
        /// `(scheduler, child-id)` when spawned inside a model.
        model: Option<(Arc<Scheduler>, usize)>,
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish, scheduling siblings meanwhile.
        pub fn join(self) -> std::thread::Result<T> {
            if let Some((sched, child)) = &self.model {
                let me = with_ctx(|ctx| ctx.expect("join of a model thread outside its model").1);
                sched.join_wait(me, *child);
            }
            self.inner.join().expect("model thread wrapper must not die")
        }
    }

    /// Spawn a thread. Inside [`super::model`] the child participates in
    /// the cooperative schedule; outside it is a plain `std` spawn.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let model = with_ctx(|ctx| ctx.map(|(s, _)| (Arc::clone(s), s.register())));
        match model {
            None => JoinHandle { inner: std::thread::spawn(move || Ok(f())), model: None },
            Some((sched, id)) => {
                let child_sched = Arc::clone(&sched);
                let inner = std::thread::spawn(move || {
                    CTX.with(|c| {
                        *c.borrow_mut() = Some((Arc::clone(&child_sched), id));
                    });
                    // Wait for our first turn before touching anything.
                    child_sched.switch(id);
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                    child_sched.retire(id, result.is_err());
                    CTX.with(|c| *c.borrow_mut() = None);
                    result
                });
                // Spawning is itself a visible event: give the child (or
                // anyone) a chance to run first.
                switch_point();
                JoinHandle { inner, model: Some((sched, id)) }
            }
        }
    }
}

pub mod sync {
    //! Model-aware `std::sync` subset.

    pub use std::sync::Arc;

    pub mod atomic {
        //! Atomics that context-switch around every access.

        use super::super::switch_point;
        pub use std::sync::atomic::Ordering;

        /// `std::sync::atomic::AtomicUsize`, instrumented: every access is
        /// a scheduling point, so the model explores orderings around it.
        /// All accesses are promoted to `SeqCst` — the shim checks
        /// *interleavings*, not weak-memory reorderings (real loom covers
        /// those; see DESIGN.md §9).
        #[derive(Debug, Default)]
        pub struct AtomicUsize(std::sync::atomic::AtomicUsize);

        impl AtomicUsize {
            /// A new atomic with the given value.
            pub const fn new(v: usize) -> Self {
                AtomicUsize(std::sync::atomic::AtomicUsize::new(v))
            }

            /// Instrumented `load`.
            pub fn load(&self, _order: Ordering) -> usize {
                switch_point();
                let v = self.0.load(Ordering::SeqCst);
                switch_point();
                v
            }

            /// Instrumented `store`.
            pub fn store(&self, v: usize, _order: Ordering) {
                switch_point();
                self.0.store(v, Ordering::SeqCst);
                switch_point();
            }

            /// Instrumented `fetch_add`.
            pub fn fetch_add(&self, v: usize, _order: Ordering) -> usize {
                switch_point();
                let out = self.0.fetch_add(v, Ordering::SeqCst);
                switch_point();
                out
            }

            /// Instrumented `compare_exchange`.
            pub fn compare_exchange(
                &self,
                current: usize,
                new: usize,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<usize, usize> {
                switch_point();
                let out = self.0.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst);
                switch_point();
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;
    use super::thread;
    use std::sync::Mutex;

    #[test]
    fn counter_is_exact_under_every_schedule() {
        super::model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        for _ in 0..4 {
                            n.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::Relaxed), 12);
        });
    }

    #[test]
    fn schedules_explore_distinct_interleavings() {
        // Two threads each append their id twice; across seeds the
        // recorded event orders must differ — i.e. the scheduler really
        // interleaves rather than running threads to completion.
        let orders: Arc<Mutex<std::collections::BTreeSet<Vec<usize>>>> =
            Arc::new(Mutex::new(std::collections::BTreeSet::new()));
        let sink = Arc::clone(&orders);
        super::model(move || {
            let log = Arc::new(Mutex::new(Vec::new()));
            let tick = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|id| {
                    let log = Arc::clone(&log);
                    let tick = Arc::clone(&tick);
                    thread::spawn(move || {
                        for _ in 0..2 {
                            tick.fetch_add(1, Ordering::SeqCst);
                            log.lock().unwrap().push(id);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            sink.lock().unwrap().insert(log.lock().unwrap().clone());
        });
        let seen = orders.lock().unwrap();
        assert!(seen.len() > 1, "expected multiple distinct interleavings, saw only {:?}", *seen);
    }

    #[test]
    fn join_returns_child_value() {
        super::model(|| {
            let h = thread::spawn(|| 41 + 1);
            assert_eq!(h.join().unwrap(), 42);
        });
    }

    #[test]
    #[should_panic]
    fn model_body_assertions_fail_the_test() {
        super::model(|| {
            let n = AtomicUsize::new(1);
            assert_eq!(n.load(Ordering::SeqCst), 2, "deliberate");
        });
    }

    #[test]
    fn shim_types_work_outside_model() {
        let n = AtomicUsize::new(5);
        assert_eq!(n.fetch_add(2, Ordering::SeqCst), 5);
        assert_eq!(n.load(Ordering::SeqCst), 7);
        let h = thread::spawn(|| 7);
        assert_eq!(h.join().unwrap(), 7);
    }
}

//! Offline stand-in for the `rand` crate (the 0.9 API subset this
//! workspace uses), so the workspace builds with no registry access.
//!
//! The workspace depends on it under the name `rand` (a path dependency
//! with a package rename), so call sites are identical to the real crate:
//! `StdRng::seed_from_u64`, `Rng::random_bool`, `Rng::random_range`.
//!
//! [`StdRng`] here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than the real `rand::rngs::StdRng` (ChaCha12), but every consumer
//! in this workspace only requires a *deterministic, well-mixed, seedable*
//! generator, not a specific stream. EXPERIMENTS.md's measured tables were
//! regenerated against these streams.

#![forbid(unsafe_code)]

/// A uniform random source. Only the methods this workspace calls.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 uniform mantissa bits, the standard [0,1) construction.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// A uniform sample from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard generator: xoshiro256++.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, public domain reference).
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The generators module, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// Uniform sampling in `0..span` without modulo bias (`span >= 1`).
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Reject samples beyond the largest multiple of `span`.
    let zone = span * (u64::MAX / span);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

/// A range that can produce a uniform sample (mirrors
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.random_range(3..=9);
            assert!((3..=9).contains(&x));
            let y: usize = rng.random_range(0..5);
            assert!(y < 5);
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn uniform_covers_small_spans() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[rng.random_range(0usize..3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

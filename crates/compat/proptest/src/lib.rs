//! Offline stand-in for the `proptest` crate, so the property tests run
//! with no registry access.
//!
//! Implements the API subset this workspace uses — the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`, integer-range and tuple strategies,
//! `prop::collection::vec`, `prop::option::of`, [`prop_oneof!`], [`Just`],
//! and the `prop_assert*` macros — over a deterministic SplitMix64 case
//! generator. Differences from the real crate: no shrinking (a failing
//! case is reported as generated) and a fixed per-test seed derived from
//! the test's name, so failures reproduce exactly across runs.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for the given seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `0..span` (`span >= 1`).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span >= 1);
        if span.is_power_of_two() {
            return self.next_u64() & (span - 1);
        }
        let zone = span * (u64::MAX / span);
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % span;
            }
        }
    }
}

/// FNV-1a hash of a test name, used as its reproducible seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A recoverable test-case failure (produced by the `prop_assert*` macros).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// A uniform choice among type-erased alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given alternatives.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive size range for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `elem`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// The result of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` of a value from `inner` (3/4 of the time) or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The `prop::` namespace used via the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)*),
                left,
                right
            )));
        }
    }};
}

/// A uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define `#[test]` functions over generated inputs.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn holds(x in 0u32..10, v in prop::collection::vec(0u8..4, 0..6)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_seed($crate::seed_for(stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let result: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = result {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            x in 2u64..=5,
            v in prop::collection::vec((0u32..3, 1u8..=4), 0..10),
        ) {
            prop_assert!((2..=5).contains(&x));
            prop_assert!(v.len() < 10);
            for (a, b) in v {
                prop_assert!(a < 3, "a = {}", a);
                prop_assert!((1..=4).contains(&b));
            }
        }

        #[test]
        fn oneof_and_map_compose(y in prop_oneof![
            (0u8..2).prop_map(|v| v as u64),
            Just(99u64),
        ]) {
            prop_assert!(y < 2 || y == 99);
            prop_assert_eq!(y.min(99), y);
        }
    }

    #[test]
    fn seeds_are_stable_per_name() {
        assert_eq!(super::seed_for("abc"), super::seed_for("abc"));
        assert_ne!(super::seed_for("abc"), super::seed_for("abd"));
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_its_index() {
        // Reproduce the macro expansion by hand with an always-failing body.
        let config = ProptestConfig::with_cases(3);
        let mut rng = crate::TestRng::from_seed(crate::seed_for("failing"));
        for case in 0..config.cases {
            let x = Strategy::generate(&(0u32..10), &mut rng);
            let result: Result<(), TestCaseError> = (move || {
                prop_assert!(x >= 10, "x = {}", x);
                Ok(())
            })();
            if let Err(e) = result {
                panic!("proptest case {}/{} of `failing` failed: {}", case + 1, config.cases, e);
            }
        }
    }
}

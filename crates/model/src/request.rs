//! Requests (per-round job arrivals) and request sequences.

use crate::color::ColorId;

/// The jobs arriving in one round: a multiset of unit jobs encoded as
/// `(color, count)` pairs.
///
/// Invariants maintained by the constructors:
/// * colors appear at most once, in ascending (consistent) order;
/// * counts are strictly positive.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Request {
    arrivals: Vec<(ColorId, u64)>,
}

impl Request {
    /// The empty request.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build a request from arbitrary `(color, count)` pairs, merging
    /// duplicates and discarding zero counts.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (ColorId, u64)>) -> Self {
        let mut v: Vec<(ColorId, u64)> = pairs.into_iter().filter(|&(_, n)| n > 0).collect();
        v.sort_unstable_by_key(|&(c, _)| c);
        let mut merged: Vec<(ColorId, u64)> = Vec::with_capacity(v.len());
        for (c, n) in v {
            match merged.last_mut() {
                Some((last, total)) if *last == c => *total += n,
                _ => merged.push((c, n)),
            }
        }
        Self { arrivals: merged }
    }

    /// Add `count` jobs of `color` (no-op for zero).
    pub fn add(&mut self, color: ColorId, count: u64) {
        if count == 0 {
            return;
        }
        match self.arrivals.binary_search_by_key(&color, |&(c, _)| c) {
            Ok(i) => self.arrivals[i].1 += count,
            Err(i) => self.arrivals.insert(i, (color, count)),
        }
    }

    /// The `(color, count)` pairs, ascending by color.
    #[inline]
    pub fn pairs(&self) -> &[(ColorId, u64)] {
        &self.arrivals
    }

    /// Number of jobs of the given color in this request.
    pub fn count_of(&self, color: ColorId) -> u64 {
        self.arrivals
            .binary_search_by_key(&color, |&(c, _)| c)
            .map(|i| self.arrivals[i].1)
            .unwrap_or(0)
    }

    /// Total number of jobs in the request.
    pub fn total_jobs(&self) -> u64 {
        self.arrivals.iter().map(|&(_, n)| n).sum()
    }

    /// Whether the request carries no jobs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

/// A request sequence: `seq[i]` is the request received in the arrival phase
/// of round `i`. Rounds beyond the stored length receive empty requests.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RequestSeq {
    rounds: Vec<Request>,
}

impl RequestSeq {
    /// An empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Construct from explicit per-round requests.
    pub fn from_rounds(rounds: Vec<Request>) -> Self {
        Self { rounds }
    }

    /// Ensure the sequence covers rounds `0..=round` and add jobs to the
    /// request of `round`.
    pub fn add(&mut self, round: u64, color: ColorId, count: u64) {
        if count == 0 {
            return;
        }
        let idx = usize::try_from(round).expect("round fits in usize");
        if self.rounds.len() <= idx {
            self.rounds.resize_with(idx + 1, Request::empty);
        }
        self.rounds[idx].add(color, count);
    }

    /// The request of a round (empty for rounds past the stored horizon).
    pub fn at(&self, round: u64) -> &Request {
        static EMPTY: Request = Request { arrivals: Vec::new() };
        usize::try_from(round).ok().and_then(|i| self.rounds.get(i)).unwrap_or(&EMPTY)
    }

    /// Number of stored rounds (the horizon of the last arrival + 1).
    #[inline]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether no rounds are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Iterate `(round, request)` over the stored horizon.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Request)> + '_ {
        self.rounds.iter().enumerate().map(|(i, r)| (i as u64, r))
    }

    /// Total jobs across all rounds.
    pub fn total_jobs(&self) -> u64 {
        self.rounds.iter().map(Request::total_jobs).sum()
    }

    /// Total jobs of one color across all rounds.
    pub fn total_jobs_of(&self, color: ColorId) -> u64 {
        self.rounds.iter().map(|r| r.count_of(color)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_merges_and_sorts() {
        let r = Request::from_pairs([
            (ColorId(2), 1),
            (ColorId(0), 3),
            (ColorId(2), 2),
            (ColorId(1), 0),
        ]);
        assert_eq!(r.pairs(), &[(ColorId(0), 3), (ColorId(2), 3)]);
        assert_eq!(r.total_jobs(), 6);
        assert_eq!(r.count_of(ColorId(2)), 3);
        assert_eq!(r.count_of(ColorId(1)), 0);
    }

    #[test]
    fn add_keeps_sorted_invariant() {
        let mut r = Request::empty();
        r.add(ColorId(5), 2);
        r.add(ColorId(1), 1);
        r.add(ColorId(5), 1);
        r.add(ColorId(3), 0);
        assert_eq!(r.pairs(), &[(ColorId(1), 1), (ColorId(5), 3)]);
    }

    #[test]
    fn empty_request() {
        let r = Request::empty();
        assert!(r.is_empty());
        assert_eq!(r.total_jobs(), 0);
    }

    #[test]
    fn seq_grows_on_demand_and_reads_past_horizon() {
        let mut s = RequestSeq::new();
        s.add(3, ColorId(0), 2);
        assert_eq!(s.len(), 4);
        assert!(s.at(0).is_empty());
        assert_eq!(s.at(3).count_of(ColorId(0)), 2);
        assert!(s.at(100).is_empty());
    }

    #[test]
    fn seq_totals() {
        let mut s = RequestSeq::new();
        s.add(0, ColorId(0), 2);
        s.add(0, ColorId(1), 1);
        s.add(4, ColorId(0), 5);
        assert_eq!(s.total_jobs(), 8);
        assert_eq!(s.total_jobs_of(ColorId(0)), 7);
        assert_eq!(s.total_jobs_of(ColorId(1)), 1);
        assert_eq!(s.iter().count(), 5);
    }

    #[test]
    fn seq_add_zero_is_noop() {
        let mut s = RequestSeq::new();
        s.add(9, ColorId(0), 0);
        assert!(s.is_empty());
    }
}

//! Snapshot byte-format primitives (DESIGN.md §10).
//!
//! A hand-rolled, versioned, deterministic binary format for simulator
//! checkpoints. No external dependencies: little-endian integers,
//! length-prefixed sections, and a trailing CRC-32 (IEEE) over everything
//! before it. The layout is
//!
//! ```text
//! magic    8 bytes   b"RRSSNAP1"
//! version  u32 LE    SNAP_VERSION (currently 2; readers accept 1..=2)
//! payload  ...       writer-defined: integers, length-prefixed byte
//!                    strings, and named length-prefixed sections
//! crc      u32 LE    CRC-32/IEEE of every byte above
//! ```
//!
//! The magic is a file-type tag, not a version marker — the version is
//! the u32 that follows it. Writers always emit the current version;
//! readers accept every version back to [`SNAP_MIN_VERSION`] and expose
//! the file's version via [`SnapReader::version`] so higher layers can
//! branch their decoding (v1 encoded per-color state densely over the
//! whole universe; v2 encodes only touched colors — DESIGN.md §14).
//!
//! The writer/reader pair here is deliberately dumb: it frames bytes and
//! checks integrity, and leaves meaning to the caller. Higher layers
//! (the engine's checkpoint module, each policy's `Snapshot` impl) encode
//! their state as a sequence of primitives; decoding mirrors the encode
//! order exactly, so the format is deterministic by construction — the
//! same state always produces the same bytes.

use std::fmt;

/// Magic prefix identifying a snapshot file.
pub const SNAP_MAGIC: &[u8; 8] = b"RRSSNAP1";

/// Current snapshot format version. Bump on any layout change; readers
/// reject versions they do not know.
pub const SNAP_VERSION: u32 = 2;

/// Oldest version this build still reads (v1's dense per-color payloads
/// remain decodable for committed fixtures and long-lived checkpoints).
pub const SNAP_MIN_VERSION: u32 = 1;

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) lookup table, built at
/// compile time so the implementation carries no runtime initialization.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// A snapshot decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// The file does not start with [`SNAP_MAGIC`].
    BadMagic,
    /// The format version is not one this reader understands.
    BadVersion(u32),
    /// The trailing CRC does not match the content.
    BadChecksum {
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the content.
        computed: u32,
    },
    /// The input ended before a field could be read.
    Truncated {
        /// What was being read.
        what: &'static str,
    },
    /// A field decoded to a value the caller rejects (wrong policy name,
    /// impossible count, mismatched parameter, ...).
    Invalid(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads \
                     v{SNAP_MIN_VERSION}..=v{SNAP_VERSION})"
                )
            }
            SnapError::BadChecksum { stored, computed } => write!(
                f,
                "snapshot corrupted: checksum mismatch (stored {stored:#010x}, \
                 computed {computed:#010x})"
            ),
            SnapError::Truncated { what } => {
                write!(f, "snapshot truncated while reading {what}")
            }
            SnapError::Invalid(msg) => write!(f, "invalid snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Serializer for the snapshot format: magic + version up front, then
/// caller-driven primitives, sealed by [`SnapWriter::finish`] which
/// appends the CRC.
#[derive(Debug)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Start a snapshot: writes the magic and version header.
    pub fn new() -> Self {
        Self::with_frame(SNAP_MAGIC, SNAP_VERSION)
    }

    /// Start a framed file with a caller-chosen magic and version. The
    /// byte conventions (little-endian integers, length-prefixed byte
    /// strings and sections, trailing CRC-32) are shared with snapshots;
    /// only the 8-byte file-type tag and the version number differ. This
    /// is how sibling formats (the OPT solve cache's `RRSOPTC1`) reuse
    /// the wire format without masquerading as snapshots.
    pub fn with_frame(magic: &[u8; 8], version: u32) -> Self {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(magic);
        buf.extend_from_slice(&version.to_le_bytes());
        Self { buf }
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed (u64) byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Append a named, length-prefixed section produced by `fill`.
    ///
    /// Sections make decode errors attributable ("truncated while reading
    /// section `policy`") and let readers skip content they understand
    /// structurally but not semantically.
    pub fn section(&mut self, name: &str, fill: impl FnOnce(&mut SnapWriter)) {
        self.put_str(name);
        let mut inner = SnapWriter { buf: Vec::new() };
        fill(&mut inner);
        self.put_bytes(&inner.buf);
    }

    /// Seal the snapshot: append the CRC-32 of everything so far and
    /// return the complete byte string.
    pub fn finish(mut self) -> Vec<u8> {
        let crc = crc32(&self.buf);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.buf
    }
}

impl Default for SnapWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Deserializer mirroring [`SnapWriter`]. Construction verifies magic,
/// version, and CRC; the primitives then decode in the exact order the
/// writer emitted them.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
    version: u32,
}

impl<'a> SnapReader<'a> {
    /// Open a complete snapshot byte string: checks magic, version, and
    /// the trailing CRC, then positions the cursor at the first payload
    /// byte. Accepts every version in
    /// `SNAP_MIN_VERSION..=SNAP_VERSION`; the accepted version is
    /// reported by [`SnapReader::version`].
    pub fn new(bytes: &'a [u8]) -> Result<Self, SnapError> {
        Self::with_frame(bytes, SNAP_MAGIC, SNAP_MIN_VERSION..=SNAP_VERSION)
    }

    /// Open a framed file written by [`SnapWriter::with_frame`]: checks
    /// the caller's magic, that the version falls in `versions`, and the
    /// trailing CRC, then positions the cursor at the first payload byte.
    pub fn with_frame(
        bytes: &'a [u8],
        magic: &[u8; 8],
        versions: std::ops::RangeInclusive<u32>,
    ) -> Result<Self, SnapError> {
        if bytes.len() < magic.len() + 4 + 4 {
            // Too short even for an empty payload — but distinguish a bad
            // prefix from a truncated-but-recognizable one.
            if !bytes.starts_with(magic) && bytes.len() >= magic.len() {
                return Err(SnapError::BadMagic);
            }
            return Err(SnapError::Truncated { what: "header" });
        }
        if &bytes[..magic.len()] != magic {
            return Err(SnapError::BadMagic);
        }
        let mut ver = [0u8; 4];
        ver.copy_from_slice(&bytes[magic.len()..magic.len() + 4]);
        let version = u32::from_le_bytes(ver);
        if !versions.contains(&version) {
            return Err(SnapError::BadVersion(version));
        }
        let body = &bytes[..bytes.len() - 4];
        let mut crc_bytes = [0u8; 4];
        crc_bytes.copy_from_slice(&bytes[bytes.len() - 4..]);
        let stored = u32::from_le_bytes(crc_bytes);
        let computed = crc32(body);
        if stored != computed {
            return Err(SnapError::BadChecksum { stored, computed });
        }
        Ok(Self { buf: body, pos: magic.len() + 4, version })
    }

    /// Open a reader over raw payload bytes (a section body already
    /// extracted from a checked snapshot) with no header or CRC, assuming
    /// the current format version.
    pub fn over(buf: &'a [u8]) -> Self {
        Self::over_versioned(buf, SNAP_VERSION)
    }

    /// Open a raw-payload reader that reports `version` — used when a
    /// section body extracted from an old snapshot is handed to another
    /// decoder that must branch on the file's version.
    pub fn over_versioned(buf: &'a [u8], version: u32) -> Self {
        Self { buf, pos: 0, version }
    }

    /// The format version of the snapshot this reader (or the snapshot
    /// its bytes were extracted from) was opened with.
    #[inline]
    pub fn version(&self) -> u32 {
        self.version
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(n).ok_or(SnapError::Truncated { what })?;
        if end > self.buf.len() {
            return Err(SnapError::Truncated { what });
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self, what: &'static str) -> Result<u8, SnapError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self, what: &'static str) -> Result<u32, SnapError> {
        let b = self.take(4, what)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self, what: &'static str) -> Result<u64, SnapError> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self, what: &'static str) -> Result<&'a [u8], SnapError> {
        let len = self.get_u64(what)?;
        let len = usize::try_from(len).map_err(|_| SnapError::Truncated { what })?;
        self.take(len, what)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, what: &'static str) -> Result<&'a str, SnapError> {
        let bytes = self.get_bytes(what)?;
        std::str::from_utf8(bytes)
            .map_err(|_| SnapError::Invalid(format!("{what}: not valid UTF-8")))
    }

    /// Read a named section: verifies the stored name matches `name` and
    /// returns a reader scoped to the section body, inheriting this
    /// reader's format version.
    pub fn section(&mut self, name: &'static str) -> Result<SnapReader<'a>, SnapError> {
        let stored = self.get_str("section name")?;
        if stored != name {
            return Err(SnapError::Invalid(format!("expected section '{name}', found '{stored}'")));
        }
        let body = self.get_bytes("section body")?;
        Ok(SnapReader::over_versioned(body, self.version))
    }

    /// True when every byte has been consumed. Decoders should check this
    /// at the end of each section to catch trailing garbage.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// The bytes not yet consumed, without advancing the cursor. Lets a
    /// caller split a payload: decode a prefix now, hand the remainder to
    /// another decoder later (via [`SnapReader::over`]).
    pub fn rest(&self) -> &'a [u8] {
        &self.buf[self.pos.min(self.buf.len())..]
    }

    /// Error unless the reader is fully consumed.
    pub fn expect_end(&self, what: &'static str) -> Result<(), SnapError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(SnapError::Invalid(format!("{what}: {} trailing bytes", self.buf.len() - self.pos)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_primitives() {
        let mut w = SnapWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_str("hello");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.finish();

        let mut r = SnapReader::new(&bytes).unwrap();
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert_eq!(r.get_u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.get_str("d").unwrap(), "hello");
        assert_eq!(r.get_bytes("e").unwrap(), &[1, 2, 3]);
        r.expect_end("payload").unwrap();
    }

    #[test]
    fn sections_round_trip_and_check_names() {
        let mut w = SnapWriter::new();
        w.section("engine", |s| {
            s.put_u64(42);
        });
        w.section("policy", |s| {
            s.put_str("dlru-edf");
        });
        let bytes = w.finish();

        let mut r = SnapReader::new(&bytes).unwrap();
        let mut eng = r.section("engine").unwrap();
        assert_eq!(eng.get_u64("x").unwrap(), 42);
        eng.expect_end("engine").unwrap();
        let mut pol = r.section("policy").unwrap();
        assert_eq!(pol.get_str("name").unwrap(), "dlru-edf");

        let mut r2 = SnapReader::new(&bytes).unwrap();
        let e = r2.section("policy").unwrap_err();
        assert!(matches!(e, SnapError::Invalid(_)));
    }

    #[test]
    fn custom_frames_round_trip_and_stay_distinct() {
        let mut w = SnapWriter::with_frame(b"RRSTEST1", 7);
        w.put_u64(99);
        let bytes = w.finish();
        // The matching frame reads back and reports its version.
        let mut r = SnapReader::with_frame(&bytes, b"RRSTEST1", 7..=7).unwrap();
        assert_eq!(r.version(), 7);
        assert_eq!(r.get_u64("x").unwrap(), 99);
        r.expect_end("payload").unwrap();
        // A snapshot reader must not accept a foreign frame, nor the
        // reverse — magic is a file-type tag, not decoration.
        assert_eq!(SnapReader::new(&bytes).unwrap_err(), SnapError::BadMagic);
        let snap = SnapWriter::new().finish();
        assert_eq!(
            SnapReader::with_frame(&snap, b"RRSTEST1", 7..=7).unwrap_err(),
            SnapError::BadMagic
        );
        // Out-of-range versions are rejected by the frame check.
        let w = SnapWriter::with_frame(b"RRSTEST1", 8);
        let bytes = w.finish();
        assert_eq!(
            SnapReader::with_frame(&bytes, b"RRSTEST1", 7..=7).unwrap_err(),
            SnapError::BadVersion(8)
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut w = SnapWriter::new();
        w.put_u64(1);
        let mut bytes = w.finish();
        bytes[0] = b'X';
        assert_eq!(SnapReader::new(&bytes).unwrap_err(), SnapError::BadMagic);
    }

    #[test]
    fn bad_version_rejected() {
        let mut w = SnapWriter::new();
        w.put_u64(1);
        let mut bytes = w.finish();
        // Patch the version field and re-seal with a fresh CRC so only the
        // version check can fire.
        bytes[8] = 99;
        let len = bytes.len();
        let crc = crc32(&bytes[..len - 4]);
        bytes[len - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(SnapReader::new(&bytes).unwrap_err(), SnapError::BadVersion(99));
    }

    #[test]
    fn old_versions_accepted_and_reported() {
        let mut w = SnapWriter::new();
        w.put_u64(1);
        let mut bytes = w.finish();
        let r = SnapReader::new(&bytes).unwrap();
        assert_eq!(r.version(), SNAP_VERSION);
        // Patch down to v1 and re-seal: still readable, version exposed.
        bytes[8..12].copy_from_slice(&SNAP_MIN_VERSION.to_le_bytes());
        let len = bytes.len();
        let crc = crc32(&bytes[..len - 4]);
        bytes[len - 4..].copy_from_slice(&crc.to_le_bytes());
        let r = SnapReader::new(&bytes).unwrap();
        assert_eq!(r.version(), SNAP_MIN_VERSION);
        // Versions below the floor are rejected like unknown futures.
        bytes[8..12].copy_from_slice(&0u32.to_le_bytes());
        let crc = crc32(&bytes[..len - 4]);
        bytes[len - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(SnapReader::new(&bytes).unwrap_err(), SnapError::BadVersion(0));
    }

    #[test]
    fn bit_flip_rejected() {
        let mut w = SnapWriter::new();
        w.put_u64(12345);
        w.put_str("payload");
        let bytes = w.finish();
        for i in 12..bytes.len() - 4 {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            let e = SnapReader::new(&corrupt).unwrap_err();
            assert!(matches!(e, SnapError::BadChecksum { .. }), "flip at byte {i} gave {e:?}");
        }
    }

    #[test]
    fn truncation_rejected() {
        let mut w = SnapWriter::new();
        w.put_u64(12345);
        let bytes = w.finish();
        for len in 0..bytes.len() {
            let e = SnapReader::new(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    e,
                    SnapError::Truncated { .. }
                        | SnapError::BadChecksum { .. }
                        | SnapError::BadMagic
                ),
                "prefix of {len} bytes gave {e:?}"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_is_truncation_not_panic() {
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX); // absurd length prefix for a byte string
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes).unwrap();
        assert!(matches!(r.get_bytes("blob").unwrap_err(), SnapError::Truncated { .. }));
    }
}

//! Streaming instance ingestion (DESIGN.md §10).
//!
//! [`InstanceSource`] abstracts "where requests come from" so the round
//! loop no longer requires a fully materialized [`Instance`]:
//!
//! * [`MaterializedSource`] adapts an in-memory instance — the existing
//!   behavior, with identical request order and horizon.
//! * [`TextStream`] reads the textio format incrementally from any
//!   [`BufRead`], holding only the current round's request plus one
//!   buffered look-ahead arrival. Memory use is independent of the
//!   horizon, which is what makes ≥10⁶-round runs feasible.
//!
//! A source is driven with strictly increasing rounds: `advance(r)` makes
//! round `r`'s request available through `current()`. The reported
//! [`InstanceSource::horizon`] is a *growing* quantity for streams — it
//! covers every arrival read so far **including the buffered look-ahead**,
//! so driving `round <= horizon()` until it stabilizes visits every round
//! a materialized run would (the look-ahead invariant guarantees the next
//! unread arrival is always reflected before the loop could stop short).

use std::io::BufRead;

use crate::color::{ColorId, ColorTable};
use crate::instance::Instance;
use crate::request::Request;
use crate::textio::ParseError;

/// A failure while pulling requests from a source.
#[derive(Debug)]
pub enum StreamError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// A line did not parse, or violated a streaming restriction.
    Parse(ParseError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "stream read error: {e}"),
            StreamError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io(e) => Some(e),
            StreamError::Parse(e) => Some(e),
        }
    }
}

impl From<ParseError> for StreamError {
    fn from(e: ParseError) -> Self {
        StreamError::Parse(e)
    }
}

/// An incremental provider of per-round requests.
///
/// Contract: `advance` is called with strictly increasing rounds starting
/// at 0 (no skipping backwards); after `advance(r)` returns, `current()`
/// is round `r`'s request and `horizon()` is an inclusive upper bound on
/// the last round that can still see work (it may grow as more of the
/// input is read, but never past-due: every arrival not yet visible
/// through `current()` is already counted in `horizon()`).
pub trait InstanceSource {
    /// The reconfiguration cost Δ.
    fn delta(&self) -> u64;

    /// The color table. For streams this may gain colors as declarations
    /// are read; ids remain dense and stable.
    fn colors(&self) -> &ColorTable;

    /// Make round `round`'s request available via [`InstanceSource::current`].
    fn advance(&mut self, round: u64) -> Result<(), StreamError>;

    /// The request of the most recently advanced round.
    fn current(&self) -> &Request;

    /// Inclusive last round the simulation must process to drain all work
    /// seen so far (max `arrival_round + D_ℓ` over arrivals read, plus the
    /// buffered look-ahead).
    fn horizon(&self) -> u64;
}

/// [`InstanceSource`] over a fully materialized [`Instance`] — the
/// classic in-memory path, with a fixed horizon.
#[derive(Debug)]
pub struct MaterializedSource<'a> {
    inst: &'a Instance,
    round: u64,
}

impl<'a> MaterializedSource<'a> {
    /// Wrap an instance.
    pub fn new(inst: &'a Instance) -> Self {
        Self { inst, round: 0 }
    }
}

impl InstanceSource for MaterializedSource<'_> {
    fn delta(&self) -> u64 {
        self.inst.delta
    }

    fn colors(&self) -> &ColorTable {
        &self.inst.colors
    }

    fn advance(&mut self, round: u64) -> Result<(), StreamError> {
        self.round = round;
        Ok(())
    }

    fn current(&self) -> &Request {
        self.inst.requests.at(self.round)
    }

    fn horizon(&self) -> u64 {
        self.inst.horizon()
    }
}

/// Incremental textio reader: parses `delta` / `color` / `arrive` lines
/// on demand, holding one round's request at a time.
///
/// Streaming restrictions on top of [`crate::textio::from_text`] (both
/// satisfied by everything [`crate::textio::to_text`] emits):
///
/// * `delta` must appear before the first `arrive`;
/// * `arrive` rounds must be nondecreasing.
#[derive(Debug)]
pub struct TextStream<R: BufRead> {
    reader: R,
    line_no: usize,
    line_buf: String,
    delta: u64,
    colors: ColorTable,
    current: Request,
    /// Next arrival already read but belonging to a future round.
    lookahead: Option<(u64, ColorId, u64)>,
    horizon: u64,
    eof: bool,
}

/// One parsed line of the textio stream.
enum Line {
    Delta(u64),
    Color(u64, u64),
    Arrive(u64, u64, u64),
    Blank,
}

impl<R: BufRead> TextStream<R> {
    /// Open a stream: reads the prologue (delta and any color
    /// declarations) up to and including the first arrival, which is
    /// buffered as look-ahead.
    pub fn new(reader: R) -> Result<Self, StreamError> {
        let mut s = TextStream {
            reader,
            line_no: 0,
            line_buf: String::new(),
            delta: 0,
            colors: ColorTable::new(),
            current: Request::empty(),
            lookahead: None,
            horizon: 0,
            eof: false,
        };
        let mut delta: Option<u64> = None;
        loop {
            match s.next_line()? {
                None => {
                    s.eof = true;
                    break;
                }
                Some(Line::Blank) => {}
                Some(Line::Delta(v)) => {
                    if delta.replace(v).is_some() {
                        return Err(s.err("duplicate delta"));
                    }
                }
                Some(Line::Color(id, bound)) => s.declare_color(id, bound)?,
                Some(Line::Arrive(round, color, count)) => {
                    if delta.is_none() {
                        return Err(s.err("streaming requires delta before the first arrive"));
                    }
                    s.buffer_arrival(round, color, count)?;
                    break;
                }
            }
        }
        s.delta = delta.ok_or_else(|| s.err("missing delta"))?;
        Ok(s)
    }

    fn err(&self, message: impl Into<String>) -> StreamError {
        StreamError::Parse(ParseError { line: self.line_no.max(1), message: message.into() })
    }

    /// Read and tokenize the next line; `None` at end of input.
    fn next_line(&mut self) -> Result<Option<Line>, StreamError> {
        self.line_buf.clear();
        let n = self.reader.read_line(&mut self.line_buf).map_err(StreamError::Io)?;
        if n == 0 {
            return Ok(None);
        }
        self.line_no += 1;
        let line = self.line_buf.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            return Ok(Some(Line::Blank));
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().expect("non-blank line has a first token");
        let line_no = self.line_no;
        let mut arg = |name: &str| -> Result<u64, StreamError> {
            parts
                .next()
                .ok_or_else(|| {
                    StreamError::Parse(ParseError {
                        line: line_no,
                        message: format!("missing {name}"),
                    })
                })?
                .parse::<u64>()
                .map_err(|e| {
                    StreamError::Parse(ParseError {
                        line: line_no,
                        message: format!("bad {name}: {e}"),
                    })
                })
        };
        let parsed = match keyword {
            "delta" => Line::Delta(arg("delta value")?),
            "color" => Line::Color(arg("color id")?, arg("delay bound")?),
            "arrive" => Line::Arrive(arg("round")?, arg("color")?, arg("count")?),
            other => return Err(self.err(format!("unknown keyword '{other}'"))),
        };
        if parts.next().is_some() {
            return Err(self.err("trailing tokens"));
        }
        Ok(Some(parsed))
    }

    fn declare_color(&mut self, id: u64, bound: u64) -> Result<(), StreamError> {
        if id != self.colors.len() as u64 {
            return Err(self.err(format!(
                "color ids must be consecutive; expected {}, got {id}",
                self.colors.len()
            )));
        }
        if bound == 0 {
            return Err(self.err("delay bound must be positive"));
        }
        self.colors.push(bound);
        Ok(())
    }

    /// Validate an arrival line and park it as look-ahead, folding its
    /// deadline into the horizon.
    fn buffer_arrival(&mut self, round: u64, color: u64, count: u64) -> Result<(), StreamError> {
        let c = ColorId(
            u32::try_from(color).map_err(|_| self.err(format!("color id {color} out of range")))?,
        );
        let Some(bound) = self.colors.try_delay_bound(c) else {
            return Err(self.err(format!("undeclared color {color}")));
        };
        self.horizon = self.horizon.max(round + bound);
        self.lookahead = Some((round, c, count));
        Ok(())
    }

    /// Pull lines until the look-ahead holds an arrival for a round past
    /// `round` (or end of input), folding arrivals for `round` itself into
    /// `current`.
    fn fill_round(&mut self, round: u64) -> Result<(), StreamError> {
        loop {
            match self.lookahead {
                Some((r, c, n)) if r <= round => {
                    if r < round {
                        return Err(self.err(format!(
                            "arrive round {r} out of order (already past round {round})"
                        )));
                    }
                    self.current.add(c, n);
                    self.lookahead = None;
                }
                Some(_) => return Ok(()), // future round — done for now
                None if self.eof => return Ok(()),
                None => {}
            }
            match self.next_line()? {
                None => {
                    self.eof = true;
                    return Ok(());
                }
                Some(Line::Blank) => {}
                Some(Line::Delta(_)) => return Err(self.err("duplicate delta")),
                Some(Line::Color(id, bound)) => self.declare_color(id, bound)?,
                Some(Line::Arrive(r, color, count)) => self.buffer_arrival(r, color, count)?,
            }
        }
    }
}

impl<R: BufRead> InstanceSource for TextStream<R> {
    fn delta(&self) -> u64 {
        self.delta
    }

    fn colors(&self) -> &ColorTable {
        &self.colors
    }

    fn advance(&mut self, round: u64) -> Result<(), StreamError> {
        self.current = Request::empty();
        if let Some((r, _, _)) = self.lookahead {
            if r < round {
                return Err(
                    self.err(format!("arrive round {r} out of order (already past round {round})"))
                );
            }
        }
        self.fill_round(round)
    }

    fn current(&self) -> &Request {
        &self.current
    }

    fn horizon(&self) -> u64 {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::textio::to_text;

    fn sample() -> Instance {
        let mut b = InstanceBuilder::new(4);
        let c0 = b.color(4);
        let c1 = b.color(32);
        b.arrive(0, c1, 24).arrive(0, c0, 3).arrive(4, c0, 3).arrive(9, c1, 1);
        b.build()
    }

    /// Drive a source across the full horizon, collecting requests.
    fn drain(src: &mut impl InstanceSource) -> Vec<(u64, Vec<(ColorId, u64)>)> {
        let mut out = Vec::new();
        let mut round = 0;
        while round <= src.horizon() {
            src.advance(round).unwrap();
            if !src.current().is_empty() {
                out.push((round, src.current().pairs().to_vec()));
            }
            round += 1;
        }
        out
    }

    #[test]
    fn text_stream_matches_materialized() {
        let inst = sample();
        let text = to_text(&inst);
        let mut stream = TextStream::new(text.as_bytes()).unwrap();
        assert_eq!(stream.delta(), inst.delta);
        let mut mat = MaterializedSource::new(&inst);
        let from_stream = drain(&mut stream);
        let from_mat = drain(&mut mat);
        assert_eq!(from_stream, from_mat);
        assert_eq!(stream.horizon(), inst.horizon());
        assert_eq!(stream.colors().len(), inst.colors.len());
    }

    #[test]
    fn lookahead_keeps_horizon_ahead_of_gaps() {
        // A long gap between arrivals: the buffered look-ahead must keep
        // the horizon past the gap so a `round <= horizon()` loop does
        // not stop early.
        let text = "delta 1\ncolor 0 2\narrive 0 0 1\narrive 100 0 1\n";
        let mut s = TextStream::new(text.as_bytes()).unwrap();
        s.advance(0).unwrap();
        assert_eq!(s.current().total_jobs(), 1);
        assert_eq!(s.horizon(), 102, "look-ahead arrival already counted");
        for r in 1..=99 {
            s.advance(r).unwrap();
            assert!(s.current().is_empty());
        }
        s.advance(100).unwrap();
        assert_eq!(s.current().total_jobs(), 1);
    }

    #[test]
    fn merges_repeated_arrivals_in_a_round() {
        let text = "delta 1\ncolor 0 2\narrive 3 0 1\narrive 3 0 2\n";
        let mut s = TextStream::new(text.as_bytes()).unwrap();
        for r in 0..=2 {
            s.advance(r).unwrap();
            assert!(s.current().is_empty());
        }
        s.advance(3).unwrap();
        assert_eq!(s.current().count_of(ColorId(0)), 3);
    }

    #[test]
    fn empty_instance_streams() {
        let s = TextStream::new("delta 7\ncolor 0 4\n".as_bytes()).unwrap();
        assert_eq!(s.delta(), 7);
        assert_eq!(s.horizon(), 0);
    }

    #[test]
    fn missing_delta_rejected() {
        let e = TextStream::new("color 0 4\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("missing delta"));
    }

    #[test]
    fn delta_after_arrive_rejected() {
        let e = TextStream::new("color 0 4\narrive 0 0 1\ndelta 2\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("delta before the first arrive"));
    }

    #[test]
    fn decreasing_rounds_rejected() {
        let text = "delta 1\ncolor 0 2\narrive 5 0 1\narrive 2 0 1\n";
        let mut s = TextStream::new(text.as_bytes()).unwrap();
        let mut failed = false;
        for r in 0..=5 {
            if let Err(e) = s.advance(r) {
                assert!(e.to_string().contains("out of order"), "{e}");
                failed = true;
                break;
            }
        }
        assert!(failed, "out-of-order arrival must be rejected");
    }

    #[test]
    fn undeclared_color_rejected() {
        let e = TextStream::new("delta 1\narrive 0 3 1\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("undeclared"));
    }

    #[test]
    fn late_color_declarations_are_allowed() {
        // Colors may be declared between arrivals as long as each arrive
        // references an already-declared color.
        let text = "delta 1\ncolor 0 2\narrive 0 0 1\ncolor 1 4\narrive 2 1 2\n";
        let mut s = TextStream::new(text.as_bytes()).unwrap();
        s.advance(0).unwrap();
        assert_eq!(s.current().count_of(ColorId(0)), 1);
        s.advance(1).unwrap();
        s.advance(2).unwrap();
        assert_eq!(s.current().count_of(ColorId(1)), 2);
        assert_eq!(s.colors().len(), 2);
    }
}

//! Dense, `ColorId`-indexed containers for hot-path color state.
//!
//! Colors are small dense integers by construction: [`crate::ColorTable`]
//! mints them with `push`, and the reduction wrappers (*Distribute*,
//! *VarBatch*) mint sub-colors the same way. Every per-color map in the
//! simulator's round loop can therefore be a flat vector indexed by
//! [`ColorId`] instead of a tree or a hash table — O(1) access, no
//! per-entry allocation, and iteration in the paper's *consistent order of
//! colors* (ascending id) for free.
//!
//! * [`ColorMap<T>`] — a default-growing `Vec<T>` keyed by `ColorId`.
//!   Absent colors read as `T::default()`; writes grow the backing store.
//! * [`ColorSet`] — a dense membership set with O(1) insert/remove/contains
//!   and ascending-id iteration, the flat replacement for
//!   `BTreeSet<ColorId>` in policy cache state.
//!
//! Both containers only ever allocate when the color universe grows, so a
//! steady-state round (no new colors) performs no allocations at all —
//! the discipline `tests/alloc_discipline.rs` enforces.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::color::ColorId;

/// A dense map from [`ColorId`] to `T`, backed by a flat vector.
///
/// Reads of colors beyond the backing store see [`Default::default`];
/// [`ColorMap::entry`] grows the store on demand. Iteration visits colors
/// in consistent (ascending id) order.
#[derive(Clone, PartialEq, Eq)]
pub struct ColorMap<T> {
    items: Vec<T>,
}

impl<T> Default for ColorMap<T> {
    fn default() -> Self {
        Self { items: Vec::new() }
    }
}

impl<T: fmt::Debug> fmt::Debug for ColorMap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.items.iter().enumerate().map(|(i, v)| (ColorId(i as u32), v)))
            .finish()
    }
}

impl<T> ColorMap<T> {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of colors the backing store covers (ids `0..len`).
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the backing store is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The value for `c`, if the backing store covers it.
    #[inline]
    pub fn get(&self, c: ColorId) -> Option<&T> {
        self.items.get(c.index())
    }

    /// Mutable access to the value for `c`, if the backing store covers it.
    #[inline]
    pub fn get_mut(&mut self, c: ColorId) -> Option<&mut T> {
        self.items.get_mut(c.index())
    }

    /// Iterate over `(color, value)` pairs in consistent order.
    pub fn iter(&self) -> impl Iterator<Item = (ColorId, &T)> + '_ {
        self.items.iter().enumerate().map(|(i, v)| (ColorId(i as u32), v))
    }

    /// Iterate mutably over `(color, value)` pairs in consistent order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ColorId, &mut T)> + '_ {
        self.items.iter_mut().enumerate().map(|(i, v)| (ColorId(i as u32), v))
    }

    /// The raw backing slice (index = color id).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }
}

impl<T: Default> ColorMap<T> {
    /// Grow the backing store to cover colors `0..n`, filling new entries
    /// with `T::default()`. Never shrinks.
    pub fn grow_to(&mut self, n: usize) {
        if self.items.len() < n {
            self.items.resize_with(n, T::default);
        }
    }

    /// Mutable access to the value for `c`, growing the backing store with
    /// defaults as needed.
    #[inline]
    pub fn entry(&mut self, c: ColorId) -> &mut T {
        self.grow_to(c.index() + 1);
        &mut self.items[c.index()]
    }

    /// Reset every covered entry to `T::default()`, keeping the backing
    /// store (and its allocation).
    pub fn reset(&mut self) {
        for v in &mut self.items {
            *v = T::default();
        }
    }
}

impl<T: Copy + Default> ColorMap<T> {
    /// The value for `c` by copy; colors beyond the store read as default.
    #[inline]
    pub fn value(&self, c: ColorId) -> T {
        self.items.get(c.index()).copied().unwrap_or_default()
    }
}

impl<T> Index<ColorId> for ColorMap<T> {
    type Output = T;
    #[inline]
    fn index(&self, c: ColorId) -> &T {
        &self.items[c.index()]
    }
}

impl<T> IndexMut<ColorId> for ColorMap<T> {
    #[inline]
    fn index_mut(&mut self, c: ColorId) -> &mut T {
        &mut self.items[c.index()]
    }
}

/// A dense set of colors: O(1) membership, ascending-id iteration, and no
/// allocation except when the color universe grows.
///
/// The flat replacement for `BTreeSet<ColorId>` in policy cache state —
/// iteration order (ascending id) matches the tree set's, so tie-breaking
/// by the consistent order of colors is preserved.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct ColorSet {
    member: Vec<bool>,
    len: usize,
}

impl fmt::Debug for ColorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl ColorSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `c` is a member.
    #[inline]
    pub fn contains(&self, c: ColorId) -> bool {
        self.member.get(c.index()).copied().unwrap_or(false)
    }

    /// Insert `c`; returns whether it was newly inserted. Grows the backing
    /// store as needed (the only allocating operation).
    pub fn insert(&mut self, c: ColorId) -> bool {
        if self.member.len() <= c.index() {
            self.member.resize(c.index() + 1, false);
        }
        let slot = &mut self.member[c.index()];
        let fresh = !*slot;
        *slot = true;
        self.len += fresh as usize;
        fresh
    }

    /// Remove `c`; returns whether it was a member.
    pub fn remove(&mut self, c: ColorId) -> bool {
        match self.member.get_mut(c.index()) {
            Some(slot) if *slot => {
                *slot = false;
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    /// Remove all members, keeping the backing store.
    pub fn clear(&mut self) {
        self.member.fill(false);
        self.len = 0;
    }

    /// Iterate over members in consistent (ascending id) order.
    pub fn iter(&self) -> impl Iterator<Item = ColorId> + '_ {
        self.member.iter().enumerate().filter(|&(_, &m)| m).map(|(i, _)| ColorId(i as u32))
    }
}

impl<'a> IntoIterator for &'a ColorSet {
    type Item = ColorId;
    type IntoIter = Box<dyn Iterator<Item = ColorId> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl FromIterator<ColorId> for ColorSet {
    fn from_iter<I: IntoIterator<Item = ColorId>>(iter: I) -> Self {
        let mut s = Self::new();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl Extend<ColorId> for ColorSet {
    fn extend<I: IntoIterator<Item = ColorId>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ColorId = ColorId(0);
    const B: ColorId = ColorId(1);
    const Z: ColorId = ColorId(9);

    #[test]
    fn map_reads_absent_colors_as_default() {
        let m: ColorMap<u64> = ColorMap::new();
        assert_eq!(m.value(Z), 0);
        assert!(m.get(Z).is_none());
        assert!(m.is_empty());
    }

    #[test]
    fn map_entry_grows_with_defaults() {
        let mut m: ColorMap<u64> = ColorMap::new();
        *m.entry(Z) += 3;
        assert_eq!(m.len(), 10);
        assert_eq!(m.value(Z), 3);
        assert_eq!(m.value(A), 0);
        assert_eq!(m[Z], 3);
    }

    #[test]
    fn map_iterates_in_consistent_order() {
        let mut m: ColorMap<u32> = ColorMap::new();
        *m.entry(B) = 2;
        *m.entry(A) = 1;
        let pairs: Vec<_> = m.iter().map(|(c, &v)| (c, v)).collect();
        assert_eq!(pairs, vec![(A, 1), (B, 2)]);
    }

    #[test]
    fn map_reset_keeps_capacity() {
        let mut m: ColorMap<u64> = ColorMap::new();
        *m.entry(Z) = 7;
        m.reset();
        assert_eq!(m.len(), 10, "reset keeps coverage");
        assert_eq!(m.value(Z), 0);
    }

    #[test]
    fn set_insert_remove_contains() {
        let mut s = ColorSet::new();
        assert!(s.insert(B));
        assert!(!s.insert(B), "second insert is a no-op");
        assert!(s.contains(B));
        assert!(!s.contains(A));
        assert_eq!(s.len(), 1);
        assert!(s.remove(B));
        assert!(!s.remove(B));
        assert!(s.is_empty());
    }

    #[test]
    fn set_iterates_ascending_like_btreeset() {
        let mut s = ColorSet::new();
        s.insert(Z);
        s.insert(A);
        s.insert(B);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![A, B, Z]);
        let tree: std::collections::BTreeSet<ColorId> = [Z, A, B].into_iter().collect();
        assert!(tree.iter().copied().eq(s.iter()), "iteration order matches BTreeSet");
    }

    #[test]
    fn set_clear_keeps_backing_store() {
        let mut s = ColorSet::new();
        s.insert(Z);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(Z));
        s.insert(A); // no growth needed for low ids after clear
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![A]);
    }

    #[test]
    fn set_from_and_extend() {
        let mut s: ColorSet = [B, A].into_iter().collect();
        s.extend([Z]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![A, B, Z]);
    }
}

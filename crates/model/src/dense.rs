//! Sparse-friendly, `ColorId`-indexed containers for hot-path color state.
//!
//! Colors are small dense integers by construction: [`crate::ColorTable`]
//! mints them with `push`, and the reduction wrappers (*Distribute*,
//! *VarBatch*) mint sub-colors the same way. Per-color state in the
//! simulator's round loop is therefore keyed by [`ColorId`] directly — no
//! trees, no hashing — but the color *universe* can be far larger than the
//! live working set (DESIGN.md §14: millions of minted colors, thousands
//! hot). Both containers here keep O(1) access and iteration in the
//! paper's *consistent order of colors* (ascending id) while letting
//! memory track what was actually touched:
//!
//! * [`ColorMap<T>`] — a paged map. Fixed-size pages ([`COLOR_PAGE`]
//!   entries) are allocated on first write to any color in the page;
//!   absent pages read as `T::default()`. Iteration visits only live
//!   pages, still in ascending-id order.
//! * [`ColorSet`] — a two-level hierarchical bitset: a u64 summary word
//!   per 64 leaf words, each leaf word holding 64 membership bits.
//!   O(1) insert/remove/contains, and iteration/`clear` skip empty leaves
//!   via the summary, so both cost O(live members), not O(universe).
//!
//! Containers only allocate when a new page or leaf region is first
//! touched, so a steady-state round (no new colors) performs no
//! allocations at all — the discipline `tests/alloc_discipline.rs`
//! enforces, now including the sparse regime (huge universe, small
//! working set).

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::color::ColorId;

/// Entries per [`ColorMap`] page. 64 matches the bitset leaf granularity:
/// a workload whose live colors fit `k` bitset leaves touches at most `k`
/// map pages per structure. Small enough that a scattered working set of
/// 10³ colors in a 10⁶ universe costs at most 10³ pages (~64·10³ slots),
/// large enough that the page directory at full density is 1/64 of a flat
/// vector.
pub const COLOR_PAGE: usize = 64;

const WORD_BITS: usize = 64;

/// A paged map from [`ColorId`] to `T`.
///
/// The map tracks a *coverage* bound (ids `0..len()`, grown by
/// [`ColorMap::grow_to`] and [`ColorMap::entry`]) exactly like the former
/// flat vector, but raising coverage allocates nothing: pages materialize
/// only when a color in them is first written. Reads of colors within
/// coverage whose page is absent see `T::default()`; reads beyond
/// coverage return `None` from [`ColorMap::get`] and panic on indexing,
/// matching the flat container's contract. Iteration visits live pages
/// only, in consistent (ascending id) order.
#[derive(Clone)]
pub struct ColorMap<T> {
    /// Page directory; `None` entries read as a page of defaults. The
    /// directory itself grows only when a page past its end materializes.
    pages: Vec<Option<Box<[T]>>>,
    /// Ids `0..coverage` are "covered" (in-bounds), whether or not their
    /// page exists.
    coverage: usize,
    /// Referent for shared reads of covered-but-absent slots.
    default_slot: T,
}

impl<T: Default> Default for ColorMap<T> {
    fn default() -> Self {
        Self { pages: Vec::new(), coverage: 0, default_slot: T::default() }
    }
}

impl<T: fmt::Debug> fmt::Debug for ColorMap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<T: Default> ColorMap<T> {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raise the coverage bound to colors `0..n`. Never shrinks, never
    /// allocates: new covered colors read as `T::default()` until their
    /// page is first written.
    #[inline]
    pub fn grow_to(&mut self, n: usize) {
        if self.coverage < n {
            self.coverage = n;
        }
    }

    /// Mutable access to the value for `c`, raising coverage and
    /// materializing the page as needed.
    #[inline]
    pub fn entry(&mut self, c: ColorId) -> &mut T {
        self.grow_to(c.index() + 1);
        let (pi, off) = (c.index() / COLOR_PAGE, c.index() % COLOR_PAGE);
        if self.pages.len() <= pi {
            self.pages.resize_with(pi + 1, || None);
        }
        let page =
            self.pages[pi].get_or_insert_with(|| (0..COLOR_PAGE).map(|_| T::default()).collect());
        &mut page[off]
    }

    /// Reset every slot of every live page to `T::default()`, keeping the
    /// pages (and their allocations) and the coverage bound.
    pub fn reset(&mut self) {
        for page in self.pages.iter_mut().flatten() {
            for v in page.iter_mut() {
                *v = T::default();
            }
        }
    }
}

impl<T> ColorMap<T> {
    /// Coverage bound: ids `0..len()` are in-bounds (ids, not live
    /// entries — the flat container's `len` semantics).
    #[inline]
    pub fn len(&self) -> usize {
        self.coverage
    }

    /// Whether no colors are covered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coverage == 0
    }

    /// Number of materialized pages — the map's real footprint in units
    /// of [`COLOR_PAGE`] slots (telemetry: `colormap_live_pages`).
    pub fn live_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    #[inline]
    fn slot(&self, i: usize) -> Option<&T> {
        self.pages.get(i / COLOR_PAGE)?.as_ref().map(|p| &p[i % COLOR_PAGE])
    }

    /// The value for `c`, if covered. Covered colors whose page is absent
    /// read as the default value.
    #[inline]
    pub fn get(&self, c: ColorId) -> Option<&T> {
        if c.index() >= self.coverage {
            return None;
        }
        Some(self.slot(c.index()).unwrap_or(&self.default_slot))
    }

    /// Mutable access to the value for `c`, if covered. Materializes the
    /// page on first touch.
    #[inline]
    pub fn get_mut(&mut self, c: ColorId) -> Option<&mut T>
    where
        T: Default,
    {
        if c.index() >= self.coverage {
            return None;
        }
        Some(self.entry(c))
    }

    /// Iterate over `(color, value)` pairs of live pages in consistent
    /// (ascending id) order. Covered colors whose page was never written
    /// are skipped — they hold no state beyond the default.
    pub fn iter(&self) -> impl Iterator<Item = (ColorId, &T)> + '_ {
        let coverage = self.coverage;
        self.pages
            .iter()
            .enumerate()
            .filter_map(|(pi, p)| p.as_deref().map(|p| (pi, p)))
            .flat_map(move |(pi, page)| {
                page.iter().enumerate().map(move |(off, v)| (pi * COLOR_PAGE + off, v))
            })
            .take_while(move |&(i, _)| i < coverage)
            .map(|(i, v)| (ColorId(i as u32), v))
    }

    /// Iterate mutably over `(color, value)` pairs of live pages in
    /// consistent order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ColorId, &mut T)> + '_ {
        let coverage = self.coverage;
        self.pages
            .iter_mut()
            .enumerate()
            .filter_map(|(pi, p)| p.as_deref_mut().map(|p| (pi, p)))
            .flat_map(move |(pi, page)| {
                page.iter_mut().enumerate().map(move |(off, v)| (pi * COLOR_PAGE + off, v))
            })
            .take_while(move |&(i, _)| i < coverage)
            .map(|(i, v)| (ColorId(i as u32), v))
    }
}

impl<T: Copy + Default> ColorMap<T> {
    /// The value for `c` by copy; colors beyond coverage (or on absent
    /// pages) read as default.
    #[inline]
    pub fn value(&self, c: ColorId) -> T {
        if c.index() >= self.coverage {
            return T::default();
        }
        self.slot(c.index()).copied().unwrap_or_default()
    }
}

/// Logical equality: same coverage and the same value at every covered
/// id, with absent pages reading as default. Two maps that took different
/// write paths to the same logical contents compare equal.
impl<T: PartialEq + Default> PartialEq for ColorMap<T> {
    fn eq(&self, other: &Self) -> bool {
        if self.coverage != other.coverage {
            return false;
        }
        let pages = self.pages.len().max(other.pages.len());
        let default = T::default();
        for pi in 0..pages {
            let a = self.pages.get(pi).and_then(|p| p.as_deref());
            let b = other.pages.get(pi).and_then(|p| p.as_deref());
            let same = match (a, b) {
                (None, None) => true,
                (Some(a), Some(b)) => a == b,
                // A lone live page still counts as equal if it only ever
                // held defaults (e.g. one side was reset, the other
                // rebuilt from scratch).
                (Some(p), None) | (None, Some(p)) => p.iter().all(|v| *v == default),
            };
            if !same {
                return false;
            }
        }
        true
    }
}

impl<T: Eq + Default> Eq for ColorMap<T> {}

impl<T> Index<ColorId> for ColorMap<T> {
    type Output = T;
    #[inline]
    fn index(&self, c: ColorId) -> &T {
        assert!(
            c.index() < self.coverage,
            "color {} out of bounds (coverage {})",
            c.index(),
            self.coverage
        );
        self.slot(c.index()).unwrap_or(&self.default_slot)
    }
}

impl<T: Default> IndexMut<ColorId> for ColorMap<T> {
    #[inline]
    fn index_mut(&mut self, c: ColorId) -> &mut T {
        assert!(
            c.index() < self.coverage,
            "color {} out of bounds (coverage {})",
            c.index(),
            self.coverage
        );
        self.entry(c)
    }
}

/// A set of colors as a two-level hierarchical bitset: O(1) membership,
/// ascending-id iteration that skips empty leaves, and no allocation
/// except when the id range grows.
///
/// Level 0 is a vector of u64 *leaf* words (64 colors each); level 1 is a
/// *summary* word per 64 leaves whose bit `j` is set iff leaf `64·s + j`
/// is nonzero. Iteration and [`ColorSet::clear`] walk the summary and
/// visit only nonzero leaves, so a sparse set over a huge universe pays
/// for its members, not the universe. Iteration order (ascending id)
/// matches `BTreeSet<ColorId>`, so tie-breaking by the consistent order
/// of colors is preserved.
#[derive(Clone, Default)]
pub struct ColorSet {
    /// Level-1: bit `j` of `summary[s]` set iff `leaves[64s + j] != 0`.
    summary: Vec<u64>,
    /// Level-0 membership bits; index `i`'s bit is `ColorId` `64·w + i`.
    leaves: Vec<u64>,
    len: usize,
}

impl fmt::Debug for ColorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Ascending positions of set bits in one word.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;
    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let b = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(b)
    }
}

impl ColorSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of members (maintained as a counter).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allocated leaf words — the set's real footprint
    /// (telemetry: `colorset_leaf_words`).
    pub fn leaf_words(&self) -> usize {
        self.leaves.len()
    }

    /// Whether `c` is a member.
    #[inline]
    pub fn contains(&self, c: ColorId) -> bool {
        match self.leaves.get(c.index() / WORD_BITS) {
            Some(w) => w & (1u64 << (c.index() % WORD_BITS)) != 0,
            None => false,
        }
    }

    /// Insert `c`; returns whether it was newly inserted. Grows the
    /// backing words as needed (the only allocating operation).
    pub fn insert(&mut self, c: ColorId) -> bool {
        let (wi, bit) = (c.index() / WORD_BITS, 1u64 << (c.index() % WORD_BITS));
        if self.leaves.len() <= wi {
            self.leaves.resize(wi + 1, 0);
            self.summary.resize(wi / WORD_BITS + 1, 0);
        }
        let leaf = &mut self.leaves[wi];
        let fresh = *leaf & bit == 0;
        if fresh {
            *leaf |= bit;
            self.summary[wi / WORD_BITS] |= 1u64 << (wi % WORD_BITS);
            self.len += 1;
        }
        fresh
    }

    /// Remove `c`; returns whether it was a member.
    pub fn remove(&mut self, c: ColorId) -> bool {
        let (wi, bit) = (c.index() / WORD_BITS, 1u64 << (c.index() % WORD_BITS));
        match self.leaves.get_mut(wi) {
            Some(leaf) if *leaf & bit != 0 => {
                *leaf &= !bit;
                if *leaf == 0 {
                    self.summary[wi / WORD_BITS] &= !(1u64 << (wi % WORD_BITS));
                }
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    /// Remove all members, keeping the backing words. Walks the summary
    /// and zeroes only nonzero leaves: O(summary words + live leaves),
    /// cheap for the sparse sets cleared every round (e.g. the watcher's
    /// per-mini execution ledger).
    pub fn clear(&mut self) {
        for si in 0..self.summary.len() {
            let sw = self.summary[si];
            if sw == 0 {
                continue;
            }
            for j in BitIter(sw) {
                self.leaves[si * WORD_BITS + j] = 0;
            }
            self.summary[si] = 0;
        }
        self.len = 0;
    }

    /// Iterate over members in consistent (ascending id) order, skipping
    /// empty leaves via the summary.
    pub fn iter(&self) -> impl Iterator<Item = ColorId> + '_ {
        self.summary
            .iter()
            .enumerate()
            .flat_map(|(si, &sw)| BitIter(sw).map(move |j| si * WORD_BITS + j))
            .flat_map(move |wi| {
                BitIter(self.leaves[wi]).map(move |b| ColorId((wi * WORD_BITS + b) as u32))
            })
    }
}

/// Logical equality: same members, regardless of backing-word capacity.
impl PartialEq for ColorSet {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Eq for ColorSet {}

impl<'a> IntoIterator for &'a ColorSet {
    type Item = ColorId;
    type IntoIter = Box<dyn Iterator<Item = ColorId> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl FromIterator<ColorId> for ColorSet {
    fn from_iter<I: IntoIterator<Item = ColorId>>(iter: I) -> Self {
        let mut s = Self::new();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl Extend<ColorId> for ColorSet {
    fn extend<I: IntoIterator<Item = ColorId>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ColorId = ColorId(0);
    const B: ColorId = ColorId(1);
    const Z: ColorId = ColorId(9);

    #[test]
    fn map_reads_absent_colors_as_default() {
        let m: ColorMap<u64> = ColorMap::new();
        assert_eq!(m.value(Z), 0);
        assert!(m.get(Z).is_none());
        assert!(m.is_empty());
    }

    #[test]
    fn map_entry_grows_with_defaults() {
        let mut m: ColorMap<u64> = ColorMap::new();
        *m.entry(Z) += 3;
        assert_eq!(m.len(), 10);
        assert_eq!(m.value(Z), 3);
        assert_eq!(m.value(A), 0);
        assert_eq!(m[Z], 3);
    }

    #[test]
    fn map_iterates_in_consistent_order() {
        let mut m: ColorMap<u32> = ColorMap::new();
        *m.entry(B) = 2;
        *m.entry(A) = 1;
        let pairs: Vec<_> = m.iter().map(|(c, &v)| (c, v)).collect();
        assert_eq!(pairs, vec![(A, 1), (B, 2)]);
    }

    #[test]
    fn map_reset_keeps_capacity() {
        let mut m: ColorMap<u64> = ColorMap::new();
        *m.entry(Z) = 7;
        m.reset();
        assert_eq!(m.len(), 10, "reset keeps coverage");
        assert_eq!(m.value(Z), 0);
        assert_eq!(m.live_pages(), 1, "reset keeps the page allocation");
    }

    #[test]
    fn map_grow_to_covers_without_allocating_pages() {
        let mut m: ColorMap<u64> = ColorMap::new();
        m.grow_to(1_000_000);
        assert_eq!(m.len(), 1_000_000);
        assert_eq!(m.live_pages(), 0, "coverage growth is free");
        assert_eq!(m.value(ColorId(999_999)), 0);
        assert_eq!(m[ColorId(999_999)], 0, "covered absent slot reads default");
        assert_eq!(m.iter().count(), 0, "no live pages, nothing to visit");
        *m.entry(ColorId(777_777)) = 9;
        assert_eq!(m.live_pages(), 1, "first touch materializes exactly one page");
        // Iteration visits the one live page (all its slots), nothing else.
        assert_eq!(m.iter().count(), COLOR_PAGE);
        let live: Vec<_> = m.iter().filter(|&(_, &v)| v != 0).map(|(c, &v)| (c, v)).collect();
        assert_eq!(live, vec![(ColorId(777_777), 9)]);
    }

    #[test]
    fn map_iter_skips_absent_pages_and_respects_coverage() {
        let mut m: ColorMap<u64> = ColorMap::new();
        *m.entry(ColorId(130)) = 5; // page 2
        *m.entry(ColorId(3)) = 1; // page 0
                                  // Coverage ends mid-page: the never-written tail of page 2 must
                                  // not be visited.
        let pairs: Vec<_> = m.iter().map(|(c, &v)| (c, v)).collect();
        let live: Vec<_> = pairs.iter().filter(|&&(_, v)| v != 0).collect();
        assert_eq!(live, vec![&(ColorId(3), 1), &(ColorId(130), 5)]);
        assert!(pairs.iter().all(|&(c, _)| c.index() < m.len()));
        assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0), "ascending order");
    }

    #[test]
    fn map_logical_equality_ignores_page_layout() {
        let mut a: ColorMap<u64> = ColorMap::new();
        let mut b: ColorMap<u64> = ColorMap::new();
        a.grow_to(200);
        b.grow_to(200);
        *a.entry(ColorId(70)) = 4;
        *b.entry(ColorId(70)) = 4;
        *b.entry(ColorId(5)) = 1; // touch page 0 ...
        *b.entry(ColorId(5)) = 0; // ... then return it to defaults
        assert_eq!(a, b, "a default-only page equals an absent page");
        *b.entry(ColorId(5)) = 1;
        assert_ne!(a, b);
        let mut c: ColorMap<u64> = ColorMap::new();
        *c.entry(ColorId(70)) = 4;
        assert_ne!(a, c, "coverage is part of the logical value");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn map_index_beyond_coverage_panics() {
        let m: ColorMap<u64> = ColorMap::new();
        let _ = m[Z];
    }

    #[test]
    fn set_insert_remove_contains() {
        let mut s = ColorSet::new();
        assert!(s.insert(B));
        assert!(!s.insert(B), "second insert is a no-op");
        assert!(s.contains(B));
        assert!(!s.contains(A));
        assert_eq!(s.len(), 1);
        assert!(s.remove(B));
        assert!(!s.remove(B));
        assert!(s.is_empty());
    }

    #[test]
    fn set_iterates_ascending_like_btreeset() {
        let mut s = ColorSet::new();
        s.insert(Z);
        s.insert(A);
        s.insert(B);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![A, B, Z]);
        let tree: std::collections::BTreeSet<ColorId> = [Z, A, B].into_iter().collect();
        assert!(tree.iter().copied().eq(s.iter()), "iteration order matches BTreeSet");
    }

    #[test]
    fn set_clear_keeps_backing_store() {
        let mut s = ColorSet::new();
        s.insert(Z);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(Z));
        s.insert(A); // no growth needed for low ids after clear
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![A]);
    }

    #[test]
    fn set_handles_wide_sparse_ids() {
        let mut s = ColorSet::new();
        let wide = [ColorId(999_983), ColorId(64), ColorId(63), ColorId(4096), ColorId(0)];
        for &c in &wide {
            assert!(s.insert(c));
        }
        assert_eq!(s.len(), 5);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![ColorId(0), ColorId(63), ColorId(64), ColorId(4096), ColorId(999_983)]);
        assert!(s.remove(ColorId(64)));
        assert!(!s.contains(ColorId(64)));
        assert_eq!(s.iter().count(), 4);
        s.clear();
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert!(s.leaf_words() >= 999_983 / 64, "clear keeps the backing words");
    }

    #[test]
    fn set_equality_is_logical() {
        let mut a = ColorSet::new();
        let mut b = ColorSet::new();
        a.insert(B);
        b.insert(Z); // grows backing further than a's ...
        b.remove(Z);
        b.insert(B);
        assert_eq!(a, b, "capacity differences are not observable");
        b.insert(A);
        assert_ne!(a, b);
    }

    #[test]
    fn set_from_and_extend() {
        let mut s: ColorSet = [B, A].into_iter().collect();
        s.extend([Z]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![A, B, Z]);
    }
}

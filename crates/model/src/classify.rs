//! Instance validators for the paper's problem classes.
//!
//! In the paper's `[reconfig | drop | delay | batch]` notation the three
//! classes of interest are:
//!
//! * `[Δ | 1 | D_ℓ | 1]` — the **general** problem: jobs may arrive in any
//!   round.
//! * `[Δ | 1 | D_ℓ | D_ℓ]` — **batched** arrivals: jobs of color `ℓ` arrive
//!   only at integral multiples of `D_ℓ`.
//! * **rate-limited** `[Δ | 1 | D_ℓ | D_ℓ]` — batched, and at most `D_ℓ`
//!   jobs of color `ℓ` arrive at each multiple.
//!
//! The core theorems additionally require each `D_ℓ` to be a power of two.

use crate::color::ColorId;
use crate::instance::Instance;

/// The strictest class an instance satisfies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum InstanceClass {
    /// Arbitrary arrival rounds (`[Δ|1|D_ℓ|1]`).
    General,
    /// Batched arrivals (`[Δ|1|D_ℓ|D_ℓ]`).
    Batched,
    /// Batched with at most `D_ℓ` jobs per batch.
    RateLimited,
}

/// Why an instance failed a validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// A request references a color not in the color table.
    UnknownColor { round: u64, color: ColorId },
    /// A job of `color` arrived in `round`, which is not a multiple of its
    /// delay bound (violates the batched class).
    UnbatchedArrival { round: u64, color: ColorId },
    /// More than `D_ℓ` jobs of `color` arrived in one batch (violates the
    /// rate-limited class).
    OverRateLimit { round: u64, color: ColorId, count: u64, limit: u64 },
    /// A delay bound is not a power of two.
    NotPowerOfTwo { color: ColorId, bound: u64 },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownColor { round, color } => {
                write!(f, "round {round}: unknown color {color}")
            }
            Self::UnbatchedArrival { round, color } => {
                write!(f, "round {round}: color {color} arrives off its batch boundary")
            }
            Self::OverRateLimit { round, color, count, limit } => write!(
                f,
                "round {round}: color {color} batch of {count} exceeds rate limit {limit}"
            ),
            Self::NotPowerOfTwo { color, bound } => {
                write!(f, "color {color} has non power-of-two bound {bound}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Check that all referenced colors exist.
pub fn check_colors(inst: &Instance) -> Result<(), ValidationError> {
    for (round, req) in inst.requests.iter() {
        for &(c, _) in req.pairs() {
            if !inst.colors.contains(c) {
                return Err(ValidationError::UnknownColor { round, color: c });
            }
        }
    }
    Ok(())
}

/// Check the batched class: jobs of color `ℓ` arrive only at multiples of
/// `D_ℓ`.
pub fn check_batched(inst: &Instance) -> Result<(), ValidationError> {
    check_colors(inst)?;
    for (round, req) in inst.requests.iter() {
        for &(c, _) in req.pairs() {
            if round % inst.colors.delay_bound(c) != 0 {
                return Err(ValidationError::UnbatchedArrival { round, color: c });
            }
        }
    }
    Ok(())
}

/// Check the rate-limited batched class: batched, and each batch of color
/// `ℓ` carries at most `D_ℓ` jobs.
pub fn check_rate_limited(inst: &Instance) -> Result<(), ValidationError> {
    check_batched(inst)?;
    for (round, req) in inst.requests.iter() {
        for &(c, n) in req.pairs() {
            let limit = inst.colors.delay_bound(c);
            if n > limit {
                return Err(ValidationError::OverRateLimit { round, color: c, count: n, limit });
            }
        }
    }
    Ok(())
}

/// Check that every delay bound is a power of two.
pub fn check_power_of_two_bounds(inst: &Instance) -> Result<(), ValidationError> {
    for (c, d) in inst.colors.iter() {
        if !d.is_power_of_two() {
            return Err(ValidationError::NotPowerOfTwo { color: c, bound: d });
        }
    }
    Ok(())
}

/// The strictest class the instance satisfies.
///
/// # Panics
/// Panics if the instance references unknown colors (a structural error,
/// not a class distinction).
pub fn classify(inst: &Instance) -> InstanceClass {
    check_colors(inst).expect("instance references unknown colors");
    if check_rate_limited(inst).is_ok() {
        InstanceClass::RateLimited
    } else if check_batched(inst).is_ok() {
        InstanceClass::Batched
    } else {
        InstanceClass::General
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    fn tiny(batch_round: u64, count: u64) -> Instance {
        let mut b = InstanceBuilder::new(2);
        let c = b.color(4);
        b.arrive(batch_round, c, count);
        b.build()
    }

    #[test]
    fn rate_limited_detected() {
        assert_eq!(classify(&tiny(4, 4)), InstanceClass::RateLimited);
        assert_eq!(classify(&tiny(0, 1)), InstanceClass::RateLimited);
    }

    #[test]
    fn batched_but_over_rate() {
        let inst = tiny(8, 5); // 5 > D=4
        assert_eq!(classify(&inst), InstanceClass::Batched);
        assert!(matches!(
            check_rate_limited(&inst),
            Err(ValidationError::OverRateLimit { count: 5, limit: 4, .. })
        ));
    }

    #[test]
    fn general_when_off_boundary() {
        let inst = tiny(3, 1);
        assert_eq!(classify(&inst), InstanceClass::General);
        assert!(matches!(
            check_batched(&inst),
            Err(ValidationError::UnbatchedArrival { round: 3, .. })
        ));
    }

    #[test]
    fn power_of_two_check() {
        let mut b = InstanceBuilder::new(1);
        b.color(4);
        b.color(6);
        let inst = b.build();
        assert!(matches!(
            check_power_of_two_bounds(&inst),
            Err(ValidationError::NotPowerOfTwo { bound: 6, .. })
        ));
    }

    #[test]
    fn empty_instance_is_rate_limited() {
        let inst = InstanceBuilder::new(1).build();
        assert_eq!(classify(&inst), InstanceClass::RateLimited);
        assert!(check_power_of_two_bounds(&inst).is_ok());
    }

    #[test]
    fn class_ordering() {
        assert!(InstanceClass::RateLimited > InstanceClass::Batched);
        assert!(InstanceClass::Batched > InstanceClass::General);
    }

    #[test]
    fn display_messages() {
        let e = ValidationError::OverRateLimit { round: 4, color: ColorId(1), count: 9, limit: 4 };
        assert!(e.to_string().contains("exceeds rate limit"));
    }
}

//! Problem instances and a builder.

use crate::color::{ColorId, ColorTable};
use crate::request::{Request, RequestSeq};

/// A complete instance of the scheduling problem `[Δ | 1 | D_ℓ | ·]`:
/// the reconfiguration cost, the colors with their delay bounds, and the
/// request sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    /// Fixed reconfiguration cost Δ (a positive integer in the paper; we
    /// additionally allow 0 for degenerate tests).
    pub delta: u64,
    /// The colors and their delay bounds.
    pub colors: ColorTable,
    /// `requests.at(i)` arrives in the arrival phase of round `i`.
    pub requests: RequestSeq,
}

impl Instance {
    /// Create an instance.
    pub fn new(delta: u64, colors: ColorTable, requests: RequestSeq) -> Self {
        Self { delta, colors, requests }
    }

    /// The number of rounds that must be simulated so every job either
    /// executes or is dropped: the maximum deadline over all arrivals
    /// (`arrival + D_ℓ`), since a job's drop phase is the round equal to its
    /// deadline. Returns 0 for an instance with no jobs.
    pub fn horizon(&self) -> u64 {
        let mut h = 0;
        for (round, req) in self.requests.iter() {
            for &(c, _) in req.pairs() {
                h = h.max(round + self.colors.delay_bound(c));
            }
        }
        h
    }

    /// Total number of jobs in the instance.
    pub fn total_jobs(&self) -> u64 {
        self.requests.total_jobs()
    }

    /// Check that every referenced color is in the color table.
    pub fn check_colors(&self) -> bool {
        self.requests
            .iter()
            .all(|(_, req)| req.pairs().iter().all(|&(c, _)| self.colors.contains(c)))
    }
}

/// Convenience builder for instances, used heavily by workload generators
/// and tests.
///
/// ```
/// use rrs_model::InstanceBuilder;
/// let mut b = InstanceBuilder::new(4);
/// let a = b.color(2); // delay bound 2
/// let c = b.color(8);
/// b.arrive(0, a, 2).arrive(0, c, 1).arrive(2, a, 1);
/// let inst = b.build();
/// assert_eq!(inst.total_jobs(), 4);
/// assert_eq!(inst.horizon(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct InstanceBuilder {
    delta: u64,
    colors: ColorTable,
    requests: RequestSeq,
}

impl InstanceBuilder {
    /// Start an instance with reconfiguration cost Δ.
    pub fn new(delta: u64) -> Self {
        Self { delta, colors: ColorTable::new(), requests: RequestSeq::new() }
    }

    /// Declare a new color with the given delay bound.
    pub fn color(&mut self, delay_bound: u64) -> ColorId {
        self.colors.push(delay_bound)
    }

    /// Declare `n` colors sharing one delay bound.
    pub fn colors(&mut self, delay_bound: u64, n: usize) -> Vec<ColorId> {
        (0..n).map(|_| self.colors.push(delay_bound)).collect()
    }

    /// Add `count` jobs of `color` arriving in `round`.
    pub fn arrive(&mut self, round: u64, color: ColorId, count: u64) -> &mut Self {
        assert!(self.colors.contains(color), "unknown color {color:?}");
        self.requests.add(round, color, count);
        self
    }

    /// Add a whole request to a round.
    pub fn request(&mut self, round: u64, req: &Request) -> &mut Self {
        for &(c, n) in req.pairs() {
            self.arrive(round, c, n);
        }
        self
    }

    /// Finish building.
    pub fn build(&self) -> Instance {
        Instance::new(self.delta, self.colors.clone(), self.requests.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_is_max_deadline() {
        let mut b = InstanceBuilder::new(3);
        let fast = b.color(2);
        let slow = b.color(16);
        b.arrive(0, slow, 1);
        b.arrive(6, fast, 4);
        let inst = b.build();
        assert_eq!(inst.horizon(), 16); // max(0+16, 6+2)
    }

    #[test]
    fn horizon_of_empty_instance_is_zero() {
        let inst = InstanceBuilder::new(1).build();
        assert_eq!(inst.horizon(), 0);
        assert_eq!(inst.total_jobs(), 0);
        assert!(inst.check_colors());
    }

    #[test]
    #[should_panic(expected = "unknown color")]
    fn builder_rejects_unknown_colors() {
        let mut b = InstanceBuilder::new(1);
        b.arrive(0, ColorId(0), 1);
    }

    #[test]
    fn check_colors_detects_foreign_ids() {
        // Construct an inconsistent instance by hand.
        let mut requests = RequestSeq::new();
        requests.add(0, ColorId(5), 1);
        let inst = Instance::new(1, ColorTable::from_bounds(&[2]), requests);
        assert!(!inst.check_colors());
    }

    #[test]
    fn builder_request_merges() {
        let mut b = InstanceBuilder::new(1);
        let c = b.color(4);
        let mut r = Request::empty();
        r.add(c, 2);
        b.request(3, &r).arrive(3, c, 1);
        let inst = b.build();
        assert_eq!(inst.requests.at(3).count_of(c), 3);
    }

    #[test]
    fn colors_bulk_declaration() {
        let mut b = InstanceBuilder::new(1);
        let ids = b.colors(8, 3);
        assert_eq!(ids.len(), 3);
        let inst = b.build();
        assert_eq!(inst.colors.len(), 3);
        assert!(inst.colors.iter().all(|(_, d)| d == 8));
    }
}

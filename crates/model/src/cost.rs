//! Cost accounting shared by the simulator, the offline solvers and the
//! analysis harness.

/// The cost ledger of a schedule: counts of reconfigurations and drops,
/// priced per the paper's model (`Δ` per reconfiguration, `1` per drop).
///
/// The ledger stores *counts*, not pre-multiplied costs, so analyses can
/// re-price them (e.g. to report reconfiguration cost in units of `Δ`).
///
/// **Pricing rule.** A reconfiguration is counted whenever a resource is
/// recolored to a *non-black* color different from its current color.
/// Parking a resource (recoloring to black) is free: the paper's model
/// charges for configuring a processor *to process a category*, and an
/// unconfigured processor processes nothing. All algorithms — online,
/// offline and the exact OPT solver — are priced by this same rule, so
/// competitive comparisons are apples-to-apples.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostLedger {
    /// The fixed reconfiguration cost Δ.
    pub delta: u64,
    /// Number of reconfigurations (location recolorings to a non-black
    /// color).
    pub reconfigs: u64,
    /// Number of dropped jobs (unit drop cost each).
    pub drops: u64,
}

impl CostLedger {
    /// A fresh ledger with the given Δ.
    pub fn new(delta: u64) -> Self {
        Self { delta, reconfigs: 0, drops: 0 }
    }

    /// Record `n` reconfigurations.
    #[inline]
    pub fn add_reconfigs(&mut self, n: u64) {
        self.reconfigs += n;
    }

    /// Record `n` dropped jobs.
    #[inline]
    pub fn add_drops(&mut self, n: u64) {
        self.drops += n;
    }

    /// Total reconfiguration cost `Δ · reconfigs`.
    #[inline]
    pub fn reconfig_cost(&self) -> u64 {
        self.delta.checked_mul(self.reconfigs).expect("reconfiguration cost overflow")
    }

    /// Total drop cost (unit drop cost).
    #[inline]
    pub fn drop_cost(&self) -> u64 {
        self.drops
    }

    /// Total cost `Δ · reconfigs + drops`.
    #[inline]
    pub fn total(&self) -> u64 {
        self.reconfig_cost().checked_add(self.drop_cost()).expect("total cost overflow")
    }

    /// Merge another ledger (same Δ) into this one.
    ///
    /// # Panics
    /// Panics if the deltas differ.
    pub fn merge(&mut self, other: &CostLedger) {
        assert_eq!(self.delta, other.delta, "merging ledgers with different \u{0394}");
        self.reconfigs += other.reconfigs;
        self.drops += other.drops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let mut l = CostLedger::new(5);
        l.add_reconfigs(3);
        l.add_drops(7);
        assert_eq!(l.reconfig_cost(), 15);
        assert_eq!(l.drop_cost(), 7);
        assert_eq!(l.total(), 22);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CostLedger::new(2);
        a.add_reconfigs(1);
        let mut b = CostLedger::new(2);
        b.add_reconfigs(2);
        b.add_drops(4);
        a.merge(&b);
        assert_eq!(a.reconfigs, 3);
        assert_eq!(a.drops, 4);
        assert_eq!(a.total(), 10);
    }

    #[test]
    #[should_panic(expected = "different")]
    fn merge_rejects_mismatched_delta() {
        let mut a = CostLedger::new(2);
        a.merge(&CostLedger::new(3));
    }

    #[test]
    fn zero_delta_instance_costs_only_drops() {
        let mut l = CostLedger::new(0);
        l.add_reconfigs(100);
        l.add_drops(9);
        assert_eq!(l.total(), 9);
    }
}

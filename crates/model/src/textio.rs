//! A plain-text instance format, for the CLI and golden tests.
//!
//! ```text
//! # rrs instance v1
//! delta 4
//! color 0 4          # color <id> <delay_bound>
//! color 1 32
//! arrive 0 1 24      # arrive <round> <color> <count>
//! arrive 4 0 3
//! ```
//!
//! Lines are independent; `#` starts a comment; blank lines are ignored.
//! Colors must be declared with consecutive ids starting at 0 before use.

use crate::color::{ColorId, ColorTable};
use crate::instance::Instance;
use crate::request::RequestSeq;

/// A parse failure with its 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Serialize an instance to the text format.
pub fn to_text(inst: &Instance) -> String {
    let mut out = String::from("# rrs instance v1\n");
    out.push_str(&format!("delta {}\n", inst.delta));
    for (c, d) in inst.colors.iter() {
        out.push_str(&format!("color {} {}\n", c.0, d));
    }
    for (round, req) in inst.requests.iter() {
        for &(c, n) in req.pairs() {
            out.push_str(&format!("arrive {} {} {}\n", round, c.0, n));
        }
    }
    out
}

/// Parse an instance from the text format.
pub fn from_text(text: &str) -> Result<Instance, ParseError> {
    let mut delta: Option<u64> = None;
    let mut colors = ColorTable::new();
    let mut requests = RequestSeq::new();

    let err = |line: usize, message: String| ParseError { line, message };
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().expect("non-blank line has a first token");
        let mut arg = |name: &str| -> Result<u64, ParseError> {
            parts
                .next()
                .ok_or_else(|| err(line_no, format!("missing {name}")))?
                .parse::<u64>()
                .map_err(|e| err(line_no, format!("bad {name}: {e}")))
        };
        match keyword {
            "delta" => {
                let v = arg("delta value")?;
                if delta.replace(v).is_some() {
                    return Err(err(line_no, "duplicate delta".into()));
                }
            }
            "color" => {
                let id = arg("color id")?;
                let bound = arg("delay bound")?;
                if id != colors.len() as u64 {
                    return Err(err(
                        line_no,
                        format!(
                            "color ids must be consecutive; expected {}, got {id}",
                            colors.len()
                        ),
                    ));
                }
                if bound == 0 {
                    return Err(err(line_no, "delay bound must be positive".into()));
                }
                colors.push(bound);
            }
            "arrive" => {
                let round = arg("round")?;
                let color = arg("color")?;
                let count = arg("count")?;
                let c = ColorId(
                    u32::try_from(color)
                        .map_err(|_| err(line_no, format!("color id {color} out of range")))?,
                );
                if !colors.contains(c) {
                    return Err(err(line_no, format!("undeclared color {color}")));
                }
                requests.add(round, c, count);
            }
            other => return Err(err(line_no, format!("unknown keyword '{other}'"))),
        }
        if parts.next().is_some() {
            return Err(err(line_no, "trailing tokens".into()));
        }
    }
    let delta = delta.ok_or_else(|| err(text.lines().count().max(1), "missing delta".into()))?;
    Ok(Instance::new(delta, colors, requests))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    fn sample() -> Instance {
        let mut b = InstanceBuilder::new(4);
        let c0 = b.color(4);
        let c1 = b.color(32);
        b.arrive(0, c1, 24).arrive(0, c0, 3).arrive(4, c0, 3);
        b.build()
    }

    #[test]
    fn round_trip() {
        let inst = sample();
        let text = to_text(&inst);
        let back = from_text(&text).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# header\ndelta 2  # cost\n color 0 4 \n\narrive 0 0 1 # one job\n";
        let inst = from_text(text).unwrap();
        assert_eq!(inst.delta, 2);
        assert_eq!(inst.total_jobs(), 1);
    }

    #[test]
    fn missing_delta_rejected() {
        let e = from_text("color 0 4\n").unwrap_err();
        assert!(e.message.contains("missing delta"));
    }

    #[test]
    fn undeclared_color_rejected() {
        let e = from_text("delta 1\narrive 0 3 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("undeclared"));
    }

    #[test]
    fn non_consecutive_color_ids_rejected() {
        let e = from_text("delta 1\ncolor 1 4\n").unwrap_err();
        assert!(e.message.contains("consecutive"));
    }

    #[test]
    fn duplicate_delta_rejected() {
        let e = from_text("delta 1\ndelta 2\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn trailing_tokens_rejected() {
        let e = from_text("delta 1 2\n").unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn zero_bound_rejected() {
        let e = from_text("delta 1\ncolor 0 0\n").unwrap_err();
        assert!(e.message.contains("positive"));
    }

    #[test]
    fn merges_repeated_arrivals() {
        let inst = from_text("delta 1\ncolor 0 2\narrive 0 0 1\narrive 0 0 2\n").unwrap();
        assert_eq!(inst.requests.at(0).count_of(ColorId(0)), 3);
    }
}

//! Problem model for *reconfigurable resource scheduling with variable
//! delay bounds* (Plaxton, Sun, Tiwari, Vin — IPPS 2007).
//!
//! This crate defines the vocabulary every other crate in the workspace
//! speaks:
//!
//! * [`ColorId`] — a job category ("color" in the paper). Each color has a
//!   positive integer **delay bound** `D_ℓ`; a job of color `ℓ` arriving in
//!   round `k` must execute by its **deadline** `k + D_ℓ` or be dropped at
//!   unit cost.
//! * [`Request`] — the (possibly empty) multiset of unit jobs arriving in a
//!   single round, encoded as `(color, count)` pairs.
//! * [`Instance`] — a complete problem instance: the reconfiguration cost
//!   `Δ`, the color table, and the request sequence.
//! * [`CostLedger`] — the cost accounting used uniformly by the simulator,
//!   the offline solvers and the analysis harness.
//! * [`ColorMap`] / [`ColorSet`] — dense `ColorId`-indexed containers; the
//!   flat state layout every hot-path per-color map in the workspace uses
//!   (see DESIGN.md §8).
//! * [`classify`] — instance validators for the paper's problem classes in
//!   the `[reconfig | drop | delay | batch]` notation: batched arrivals,
//!   rate-limited batches, power-of-two delay bounds.
//!
//! Everything here is deterministic and allocation-conscious; rounds, job
//! counts and costs are `u64`, colors are a `u32` newtype.

#![forbid(unsafe_code)]

pub mod classify;
pub mod color;
pub mod cost;
pub mod dense;
pub mod instance;
pub mod request;
pub mod snap;
pub mod stream;
pub mod textio;

pub use classify::{InstanceClass, ValidationError};
pub use color::{ColorId, ColorTable, BLACK};
pub use cost::CostLedger;
pub use dense::{ColorMap, ColorSet};
pub use instance::{Instance, InstanceBuilder};
pub use request::{Request, RequestSeq};
pub use snap::{
    crc32, SnapError, SnapReader, SnapWriter, SNAP_MAGIC, SNAP_MIN_VERSION, SNAP_VERSION,
};
pub use stream::{InstanceSource, MaterializedSource, StreamError, TextStream};
pub use textio::{from_text, to_text, ParseError};

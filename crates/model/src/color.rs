//! Colors (job categories) and the table of per-color delay bounds.

use std::fmt;

/// A job category. The paper calls these *colors*; every job and every
/// configured resource carries one.
///
/// `ColorId` is a dense index into a [`ColorTable`]. The "consistent order
/// of colors" the paper uses for tie-breaking is ascending `ColorId`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColorId(pub u32);

impl ColorId {
    /// The color's dense index, usable directly as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ColorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ColorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The pseudo-color of an unconfigured resource. All resources start black;
/// a black resource executes nothing. `BLACK` is not a member of any
/// [`ColorTable`] and no job may carry it.
pub const BLACK: Option<ColorId> = None;

/// Per-color metadata. Today this is only the delay bound; the struct exists
/// so extensions (weighted drop costs, per-color reconfiguration costs) have
/// an obvious home.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColorInfo {
    /// The delay bound `D_ℓ` (a positive integer; the core theorems require
    /// a power of two, which [`crate::classify`] checks separately).
    pub delay_bound: u64,
}

/// The set of colors of an instance together with their delay bounds.
///
/// Color tables are append-only: reductions such as *Distribute* mint fresh
/// sub-colors on the fly and push them here.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ColorTable {
    infos: Vec<ColorInfo>,
}

impl ColorTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a table from a list of delay bounds; color `i` gets
    /// `bounds[i]`.
    ///
    /// # Panics
    /// Panics if any bound is zero.
    pub fn from_bounds(bounds: &[u64]) -> Self {
        let mut t = Self::new();
        for &b in bounds {
            t.push(b);
        }
        t
    }

    /// Append a new color with the given delay bound and return its id.
    ///
    /// # Panics
    /// Panics if `delay_bound == 0` or the table would exceed `u32::MAX`
    /// colors.
    pub fn push(&mut self, delay_bound: u64) -> ColorId {
        assert!(delay_bound > 0, "delay bounds are positive integers");
        let id = u32::try_from(self.infos.len()).expect("too many colors");
        self.infos.push(ColorInfo { delay_bound });
        ColorId(id)
    }

    /// Number of colors.
    #[inline]
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Whether the table has no colors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// The delay bound `D_ℓ` of a color.
    ///
    /// # Panics
    /// Panics if the color is not in the table.
    #[inline]
    pub fn delay_bound(&self, c: ColorId) -> u64 {
        self.infos[c.index()].delay_bound
    }

    /// The delay bound, or `None` for an unknown color.
    #[inline]
    pub fn try_delay_bound(&self, c: ColorId) -> Option<u64> {
        self.infos.get(c.index()).map(|i| i.delay_bound)
    }

    /// Whether a color is present.
    #[inline]
    pub fn contains(&self, c: ColorId) -> bool {
        c.index() < self.infos.len()
    }

    /// Iterate over all `(color, delay_bound)` pairs in consistent
    /// (ascending id) order.
    pub fn iter(&self) -> impl Iterator<Item = (ColorId, u64)> + '_ {
        self.infos.iter().enumerate().map(|(i, info)| (ColorId(i as u32), info.delay_bound))
    }

    /// All color ids in consistent order.
    pub fn ids(&self) -> impl Iterator<Item = ColorId> + '_ {
        (0..self.infos.len() as u32).map(ColorId)
    }

    /// The distinct delay bounds present, ascending. Useful for iterating
    /// block boundaries: there are at most 64 distinct power-of-two bounds.
    pub fn distinct_bounds(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.infos.iter().map(|i| i.delay_bound).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The largest delay bound, or 0 for an empty table.
    pub fn max_bound(&self) -> u64 {
        self.infos.iter().map(|i| i.delay_bound).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_assigns_dense_ids() {
        let mut t = ColorTable::new();
        assert_eq!(t.push(4), ColorId(0));
        assert_eq!(t.push(8), ColorId(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.delay_bound(ColorId(0)), 4);
        assert_eq!(t.delay_bound(ColorId(1)), 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_rejected() {
        ColorTable::new().push(0);
    }

    #[test]
    fn from_bounds_round_trips() {
        let t = ColorTable::from_bounds(&[1, 2, 4]);
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs, vec![(ColorId(0), 1), (ColorId(1), 2), (ColorId(2), 4)]);
    }

    #[test]
    fn distinct_bounds_sorted_deduped() {
        let t = ColorTable::from_bounds(&[8, 2, 8, 4, 2]);
        assert_eq!(t.distinct_bounds(), vec![2, 4, 8]);
        assert_eq!(t.max_bound(), 8);
    }

    #[test]
    fn try_delay_bound_handles_unknown() {
        let t = ColorTable::from_bounds(&[2]);
        assert_eq!(t.try_delay_bound(ColorId(0)), Some(2));
        assert_eq!(t.try_delay_bound(ColorId(7)), None);
        assert!(t.contains(ColorId(0)));
        assert!(!t.contains(ColorId(7)));
    }

    #[test]
    fn color_ordering_is_consistent_order() {
        assert!(ColorId(0) < ColorId(1));
        let t = ColorTable::from_bounds(&[2, 2, 2]);
        let ids: Vec<_> = t.ids().collect();
        assert_eq!(ids, vec![ColorId(0), ColorId(1), ColorId(2)]);
    }

    #[test]
    fn empty_table() {
        let t = ColorTable::new();
        assert!(t.is_empty());
        assert_eq!(t.max_bound(), 0);
        assert!(t.distinct_bounds().is_empty());
    }
}

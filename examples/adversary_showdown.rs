//! The appendix adversaries head-to-head: feed the ΔLRU-killer (Appendix A)
//! and the EDF-killer (Appendix B) to all three algorithms and watch the
//! pure strategies collapse while ΔLRU-EDF stays within a constant factor
//! of the handcrafted offline schedule.
//!
//! ```sh
//! cargo run --example adversary_showdown
//! ```

use rrs::prelude::*;

fn showdown(title: &str, adv: &Adversary, n: usize) {
    println!("== {title} ==");
    println!(
        "   {} jobs over {} rounds; OFF uses {} resource(s)",
        adv.instance.total_jobs(),
        adv.instance.horizon(),
        adv.off_resources
    );
    let off = Simulator::new(&adv.instance, adv.off_resources)
        .run(&mut ReplayPolicy::new(adv.off_schedule.clone()));
    println!("   OFF: cost {} (predicted {})", off.total_cost(), adv.predicted_off_cost);
    println!("   {:<10} {:>9} {:>7} {:>8} {:>7}", "policy", "reconfig$", "drops", "total", "ratio");
    let row = |name: &str, out: Outcome| {
        println!(
            "   {:<10} {:>9} {:>7} {:>8} {:>7.2}",
            name,
            out.cost.reconfig_cost(),
            out.dropped,
            out.total_cost(),
            ratio(out.total_cost(), off.total_cost())
        );
    };
    row("dlru", Simulator::new(&adv.instance, n).run(&mut DeltaLru::new()));
    row("edf", Simulator::new(&adv.instance, n).run(&mut Edf::new()));
    row("dlru-edf", Simulator::new(&adv.instance, n).run(&mut DeltaLruEdf::new()));
    println!();
}

fn main() {
    let n = 8;

    let a = lru_killer(LruKillerParams { n, delta: 2, j: 7, k: 9 });
    showdown("Appendix A: the ΔLRU killer (fresh shorts starve a deep backlog)", &a, n);

    let b = edf_killer(EdfKillerParams { n, delta: 10, j: 4, k: 8 });
    showdown("Appendix B: the EDF killer (blinking shorts induce thrashing)", &b, n);

    println!("ΔLRU-EDF's two-quarter cache defuses both attacks: the LRU quarter");
    println!("keeps recently-hot colors resident through idle gaps (no thrashing),");
    println!("the EDF quarter keeps backlogged colors progressing (no starvation).");
}

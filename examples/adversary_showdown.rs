//! The adversaries head-to-head: feed the ΔLRU-killer (Appendix A), the
//! EDF-killer (Appendix B), and the *discovered* corpus adversaries to
//! every algorithm in the family — the pure strategies, ΔLRU-EDF, and the
//! full reduction stack (Distribute §4 and VarBatch §5) — and watch the
//! pure strategies collapse while the combined algorithm stays within a
//! constant factor of the offline baseline.
//!
//! ```sh
//! cargo run --example adversary_showdown
//! ```

use rrs::prelude::*;

/// Run every policy in the family against one instance and print a ratio
/// table against the given offline baseline cost.
fn family_rows(inst: &Instance, n: usize, off_cost: u64) {
    println!("   {:<10} {:>9} {:>7} {:>8} {:>7}", "policy", "reconfig$", "drops", "total", "ratio");
    let row = |name: &str, out: Outcome| {
        println!(
            "   {:<10} {:>9} {:>7} {:>8} {:>7.2}",
            name,
            out.cost.reconfig_cost(),
            out.dropped,
            out.total_cost(),
            ratio(out.total_cost(), off_cost)
        );
    };
    row("dlru", Simulator::new(inst, n).run(&mut DeltaLru::new()));
    row("edf", Simulator::new(inst, n).run(&mut Edf::new()));
    row("dlru-edf", Simulator::new(inst, n).run(&mut DeltaLruEdf::new()));
    // The reductions: Distribute splits batches across sub-colors (§4);
    // the full stack adds VarBatch's bound rounding (§5). Discovered
    // adversaries are exercised through both, not just the base problem.
    row("distribute", Simulator::new(inst, n).run(&mut Distribute::new(DeltaLruEdf::new())));
    row("full", Simulator::new(inst, n).run(&mut full_algorithm()));
}

fn showdown(title: &str, adv: &Adversary, n: usize) {
    println!("== {title} ==");
    println!(
        "   {} jobs over {} rounds; OFF uses {} resource(s)",
        adv.instance.total_jobs(),
        adv.instance.horizon(),
        adv.off_resources
    );
    let off = Simulator::new(&adv.instance, adv.off_resources)
        .run(&mut ReplayPolicy::new(adv.off_schedule.clone()));
    println!("   OFF: cost {} (predicted {})", off.total_cost(), adv.predicted_off_cost);
    family_rows(&adv.instance, n, off.total_cost());
    println!();
}

/// A committed corpus adversary: the baseline is the guarded exact OPT
/// (falling back to the certified lower bound), exactly as the search
/// refereed it.
fn discovered_showdown(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            println!("== (skipping {path}: {e}) ==\n");
            return;
        }
    };
    let entry = parse_corpus_entry(&text).expect("committed fixture parses");
    let inst = entry.genome.decode();
    println!(
        "== Discovered adversary for {} (genome {}) ==",
        entry.policy.name(),
        entry.genome.encode()
    );
    println!(
        "   {} jobs over {} rounds; referee uses {} resource(s), {} baseline {}",
        inst.total_jobs(),
        inst.horizon(),
        entry.referee_resources,
        entry.referee.name(),
        entry.base,
    );
    family_rows(&inst, entry.locations, entry.base);
    println!();
}

fn main() {
    let n = 8;

    let a = lru_killer(LruKillerParams { n, delta: 2, j: 7, k: 9 });
    showdown("Appendix A: the ΔLRU killer (fresh shorts starve a deep backlog)", &a, n);

    let b = edf_killer(EdfKillerParams { n, delta: 10, j: 4, k: 8 });
    showdown("Appendix B: the EDF killer (blinking shorts induce thrashing)", &b, n);

    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/adversaries");
    for fixture in ["dlru-seed42.adv", "edf-seed19.adv", "dlru-edf-seed5.adv"] {
        discovered_showdown(&format!("{dir}/{fixture}"));
    }

    println!("ΔLRU-EDF's two-quarter cache defuses both handcrafted attacks: the LRU");
    println!("quarter keeps recently-hot colors resident through idle gaps (no");
    println!("thrashing), the EDF quarter keeps backlogged colors progressing (no");
    println!("starvation). The reductions inherit the constant (Theorems 2-3), and");
    println!("the evolved corpus shows the same separation on instances no human");
    println!("hand-crafted.");
}

//! A programmable multi-service router (the paper's §1 application):
//! packet classes with class-specific delay tolerances under a rotating
//! traffic mix, processed by a pool of reconfigurable cores.
//!
//! ```sh
//! cargo run --example multiservice_router
//! ```

use rrs::prelude::*;

fn main() {
    let cfg = RouterConfig {
        delta: 8, // reloading a packet-processing pipeline costs 8 drops' worth
        class_bounds: vec![2, 4, 8, 16],
        rounds: 512,
        peak_rate: 4,
        cycle: 128,
    };
    let inst = multiservice_router(&cfg, 7);
    println!(
        "router trace: {} classes, {} packets over {} rounds\n",
        inst.colors.len(),
        inst.total_jobs(),
        inst.horizon()
    );

    let n = 8;
    println!("{:<10} {:>9} {:>7} {:>7} {:>7}", "policy", "reconfig$", "drops", "total", "ratio");
    let lb = combined_lower_bound(&inst, n / 8);
    let report = |name: &str, out: Outcome| {
        println!(
            "{:<10} {:>9} {:>7} {:>7} {:>7.2}",
            name,
            out.cost.reconfig_cost(),
            out.dropped,
            out.total_cost(),
            ratio(out.total_cost(), lb)
        );
    };

    report("dlru", Simulator::new(&inst, n).run(&mut DeltaLru::new()));
    report("edf", Simulator::new(&inst, n).run(&mut Edf::new()));
    report("dlru-edf", Simulator::new(&inst, n).run(&mut DeltaLruEdf::new()));
    report("full-stack", Simulator::new(&inst, n).run(&mut full_algorithm()));
    println!("\n(ratio is vs. the certified lower bound with m = n/8 = 1 resource)");
}

//! Regenerate the full experiment suite (E1–E11) and print every table.
//! This is the "reproduce the paper" entry point; `EXPERIMENTS.md` records
//! a snapshot of this output against the paper's analytical predictions.
//!
//! ```sh
//! cargo run --release --example full_evaluation
//! ```

use rrs::analysis::experiments;

fn main() {
    for table in experiments::all_default() {
        println!("{table}");
    }
    println!("(E9, the throughput experiment, is timing-based: run `cargo bench -p rrs-bench e9`)");
}

//! A shared data center (the paper's §1 application): independent services
//! whose demand shifts in phases; servers are repurposed between services
//! at a reconfiguration cost.
//!
//! ```sh
//! cargo run --example shared_datacenter
//! ```

use rrs::prelude::*;

fn main() {
    let cfg = DatacenterConfig {
        delta: 8,
        services: 6,
        bound: 8,
        phases: 6,
        phase_len: 64,
        hot_services: 2,
        hot_rate: 8,
        cold_rate: 1,
    };
    let inst = shared_datacenter(&cfg, 11);
    println!(
        "datacenter trace: {} services, {} requests over {} rounds",
        inst.colors.len(),
        inst.total_jobs(),
        inst.horizon()
    );
    println!("per-service volume:");
    for c in inst.colors.ids() {
        println!("  service {c}: {} requests", inst.requests.total_jobs_of(c));
    }

    // How does the allocation track the phase shifts? Trace ΔLRU-EDF's
    // reconfigurations per phase.
    let n = 8;
    let mut rec = SummaryRecorder::new();
    let mut policy = DeltaLruEdf::new();
    let out = Simulator::new(&inst, n).run_traced(&mut policy, &mut rec);

    println!("\nΔLRU-EDF (n={n}): total cost {}", out.total_cost());
    println!("{:<8} {:>10} {:>7} {:>9}", "phase", "reconfigs", "drops", "executed");
    for phase in 0..cfg.phases {
        let lo = (phase * cfg.phase_len) as usize;
        let hi = (((phase + 1) * cfg.phase_len) as usize).min(rec.rounds.len());
        let rows = &rec.rounds[lo..hi.max(lo)];
        let reconfigs: u64 = rows.iter().map(|r| r.reconfigs).sum();
        let drops: u64 = rows.iter().map(|r| r.drops).sum();
        let executed: u64 = rows.iter().map(|r| r.executed).sum();
        println!("{:<8} {:>10} {:>7} {:>9}", phase, reconfigs, drops, executed);
    }
    println!("\nreconfigurations cluster at phase boundaries: the allocation follows demand");
}

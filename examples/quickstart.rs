//! Quickstart: build an instance, run the paper's algorithm, inspect costs.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rrs::prelude::*;

fn main() {
    // An instance of [Δ | 1 | D_ℓ | 1]: Δ = 4, two job categories.
    let mut b = InstanceBuilder::new(4);
    let voip = b.color(4); //  tight delay tolerance: 4 rounds
    let bulk = b.color(32); // loose delay tolerance: 32 rounds

    // VoIP packets burst every block; a bulk backlog lands at round 0.
    for block in 0..8 {
        b.arrive(block * 4, voip, 3);
    }
    b.arrive(0, bulk, 24);
    let inst = b.build();

    println!("instance: {} jobs, horizon {} rounds", inst.total_jobs(), inst.horizon());
    println!("class: {:?}\n", classify::classify(&inst));

    // The paper's headline algorithm on n = 8 locations.
    let mut policy = DeltaLruEdf::new();
    let out = Simulator::new(&inst, 8).run(&mut policy);
    println!("ΔLRU-EDF (n=8):");
    println!("  reconfigurations: {} (cost {})", out.cost.reconfigs, out.cost.reconfig_cost());
    println!("  drops:            {}", out.dropped);
    println!("  executed:         {}", out.executed);
    println!("  total cost:       {}", out.total_cost());
    let m = policy.metrics();
    println!(
        "  epochs:           {} (lemma 3.3 bound: {})",
        m.num_epochs(),
        4 * m.num_epochs() * inst.delta
    );

    // Referee against the exact offline optimum with m = 1 resource.
    let opt = solve_opt(&inst, 1, OptConfig::default()).expect("small instance");
    println!("\nOPT (m=1): cost {} ({} reconfigs, {} drops)", opt.cost, opt.reconfigs, opt.drops);
    println!("empirical competitive ratio: {:.3}", ratio(out.total_cost(), opt.cost));
}

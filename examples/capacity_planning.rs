//! Capacity planning: how many reconfigurable cores does a workload need?
//!
//! Sweeps the location budget for a data-center trace and reports cost,
//! drop rate, and the cost trajectory at the chosen budget — the practical
//! question a deployment of this scheduler answers.
//!
//! ```sh
//! cargo run --example capacity_planning
//! ```

use rrs::analysis::{timeline, timeline_table};
use rrs::prelude::*;

fn main() {
    let cfg = DatacenterConfig {
        delta: 8,
        services: 8,
        bound: 8,
        phases: 4,
        phase_len: 64,
        hot_services: 3,
        hot_rate: 8,
        cold_rate: 1,
    };
    let inst = shared_datacenter(&cfg, 21);
    println!(
        "datacenter trace: {} services, {} requests over {} rounds",
        inst.colors.len(),
        inst.total_jobs(),
        inst.horizon()
    );

    println!("\ncapacity sweep (ΔLRU-EDF):");
    println!("{:>5} {:>9} {:>7} {:>9} {:>8}", "cores", "reconfig$", "drops", "total", "drop%");
    let mut chosen = 8;
    for n in [4usize, 8, 12, 16, 24, 32] {
        let out = Simulator::new(&inst, n).run(&mut DeltaLruEdf::new());
        let drop_pct = 100.0 * out.dropped as f64 / out.arrived.max(1) as f64;
        println!(
            "{:>5} {:>9} {:>7} {:>9} {:>7.1}%",
            n,
            out.cost.reconfig_cost(),
            out.dropped,
            out.total_cost(),
            drop_pct
        );
        if drop_pct < 1.0 && chosen == 8 && n > 4 {
            chosen = n;
        }
    }

    println!("\ncost trajectory at n = {chosen} (64-round windows):");
    let windows = timeline(&inst, chosen, &mut DeltaLruEdf::new(), 64);
    println!("{}", timeline_table("per-phase summary", inst.delta, &windows));
}

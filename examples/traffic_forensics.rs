//! Traffic forensics: dissect a run with the analysis toolkit — per-color
//! cost attribution, execution punctuality, and the cost trajectory — on
//! bursty on/off traffic.
//!
//! ```sh
//! cargo run --example traffic_forensics
//! ```

use rrs::analysis::{
    attribute_costs, attribution_table, punctuality_stats, timeline, timeline_table,
};
use rrs::prelude::*;

fn main() {
    let cfg = BurstyConfig {
        delta: 6,
        bounds: vec![2, 4, 8, 16, 16, 32],
        rounds: 256,
        p_on: 0.25,
        p_off: 0.35,
        on_load: 1.0,
    };
    let inst = bursty_instance(&cfg, 17);
    println!(
        "bursty trace: {} colors, {} jobs over {} rounds",
        inst.colors.len(),
        inst.total_jobs(),
        inst.horizon()
    );
    let profile = activity_profile(&inst);
    println!(
        "per-color activity: {:?}\n",
        profile.iter().map(|p| (p * 100.0).round()).collect::<Vec<_>>()
    );

    let n = 8;

    // 1. Who costs what?
    let per = attribute_costs(&inst, n, &mut DeltaLruEdf::new());
    println!("{}", attribution_table("per-color cost attribution (ΔLRU-EDF)", inst.delta, per));

    // 2. When do jobs run relative to their half-blocks?
    let mut trace = TraceRecorder::new();
    Simulator::new(&inst, n).run_traced(&mut full_algorithm(), &mut trace);
    let stats = punctuality_stats(&inst, &trace);
    println!(
        "full-stack punctuality: {} early, {} punctual, {} late (of {})\n",
        stats.early,
        stats.punctual,
        stats.late,
        stats.total()
    );

    // 3. How does cost accrue over time?
    let windows = timeline(&inst, n, &mut DeltaLruEdf::new(), 32);
    println!("{}", timeline_table("cost trajectory (32-round windows)", inst.delta, &windows));

    // 4. The referee.
    let lb = combined_lower_bound(&inst, 1);
    let cost = Simulator::new(&inst, n).run(&mut DeltaLruEdf::new()).total_cost();
    println!("total cost {cost} vs certified lower bound {lb} (ratio {:.2})", ratio(cost, lb));
}
